"""Kernel characterization: Tables 2-3 and Figure 7.

Execution model (Section 3.2): a QEC step follows every useful encoded
gate, consuming two corrected encoded-zero ancillae (bit and phase
correction, Figure 2); every pi/8-type gate additionally consumes one
encoded pi/8 ancilla. "Speed of data" is the ASAP schedule where every
gate starts as soon as its data dependencies allow, with ancillae assumed
ready — its makespan is the sum of the data-op and QEC-interaction
components (Table 2 columns 2+3).

Table 2's three components per critical-path gate:

* data op — the gate's own latency (transversal physical latency, or the
  ancilla-interaction latency for pi/8 gates);
* data/QEC interaction — 2 x (transversal CX + measure + conditional
  correct), the part of the QEC step touching data;
* ancilla prep — the data-independent preparation work, priced at the
  serial (non-overlapped) preparation latency: two Figure 4c encoded zeros
  per QEC step plus the pi/8 pipeline for non-transversal gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import Circuit
from repro.circuits.gate import PI8_CONSUMING_GATES, Gate, GateType
from repro.circuits.latency import LogicalLatencyModel
from repro.factory.simple import SimpleZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.kernels.decompose import decompose_to_encoded_gates
from repro.kernels.qcla import qcla_circuit, qcla_registers
from repro.kernels.qft import qft_circuit
from repro.kernels.qrca import qrca_circuit, qrca_registers
from repro.tech import ION_TRAP, TechnologyParams

#: Corrected encoded-zero ancillae consumed per QEC step (bit + phase).
ZEROS_PER_QEC = 2

_PI8_TYPES = PI8_CONSUMING_GATES


@dataclass(frozen=True)
class QecAwareLatency:
    """Gate latency including the data-side QEC interaction that follows.

    Used to compute the speed-of-data makespan (Table 2 columns 2+3): the
    qubit is busy for the gate plus its QEC step before the next gate can
    touch it.
    """

    logical: LogicalLatencyModel

    def gate_latency(self, gate: Gate) -> float:
        return self.logical.gate_latency(gate) + self.logical.qec_interaction_latency()


@dataclass
class KernelAnalysis:
    """Characterization of one benchmark kernel.

    Attributes:
        name: Kernel name (e.g. "32-Bit QRCA").
        circuit: The decomposed (encoded-gate-set) circuit.
        tech: Technology parameters.
        data_qubits: Number of encoded data qubits including data ancillae
            (drives Table 9's data area).
    """

    name: str
    circuit: Circuit
    tech: TechnologyParams
    data_qubits: int

    def __post_init__(self) -> None:
        self._logical = LogicalLatencyModel(self.tech)
        # One full Figure 4c preparation per QEC step: the bit- and
        # phase-correction ancillae are produced as a pair by the same
        # factory pass (Figure 11 corrects the middle ancilla with both
        # neighbours in one schedule), so the pair costs one serial latency.
        self._zero_serial_us = SimpleZeroFactory(self.tech).latency_us
        # The pi/8 conversion pipeline runs downstream of zero production;
        # its input zero is prepared concurrently with the QEC zeros.
        self._pi8_serial_us = Pi8Factory(self.tech).serial_latency_us()
        # The QEC-aware ASAP schedule is computed lazily as flat start /
        # finish arrays over the memoized compiled-circuit form — no
        # per-gate ScheduleEntry or Gate objects on the hot path.
        self._asap_times: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._chain: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Compiled ASAP schedule (speed of data, flat arrays)

    def _times(self) -> Tuple[np.ndarray, np.ndarray]:
        """(start, finish) arrays of the QEC-aware ASAP schedule.

        Longest-path over the dependency DAG, computed level by level:
        every gate of a level has all predecessors in earlier levels, so
        one ``np.maximum.reduceat`` segment-max per level yields the
        start times of the whole level at once. Matches
        :func:`repro.circuits.dag.asap_schedule` bit for bit (same max /
        add ordering), which the test suite asserts on all kernels.
        """
        if self._asap_times is not None:
            return self._asap_times
        from repro.circuits.compiled import dataflow_metadata

        compiled = self.compiled_circuit()
        n = compiled.num_gates
        dur = np.asarray(compiled.latency_us, dtype=np.float64)
        dur = dur + self._logical.qec_interaction_latency()
        starts = np.zeros(n, dtype=np.float64)
        finish = np.empty(n, dtype=np.float64)
        if n:
            df = dataflow_metadata(compiled)
            order, loff = df.level_order, df.level_offsets
            seg, flat = df.level_pred_seg, df.level_pred_flat
            first = order[loff[0]:loff[1]]
            finish[first] = dur[first]  # level 0 gates start at 0
            for lvl in range(1, df.num_levels):
                nodes = order[loff[lvl]:loff[lvl + 1]]
                s0, s1 = seg[loff[lvl]], seg[loff[lvl + 1]]
                pred_finish = finish[flat[s0:s1]]
                st = np.maximum.reduceat(
                    pred_finish, seg[loff[lvl]:loff[lvl + 1]] - s0
                )
                starts[nodes] = st
                finish[nodes] = st + dur[nodes]
        self._asap_times = (starts, finish)
        return self._asap_times

    # ------------------------------------------------------------------
    # Raw counts

    @property
    def total_gates(self) -> int:
        return len(self.circuit)

    @property
    def pi8_gate_count(self) -> int:
        """Gates consuming an encoded pi/8 ancilla."""
        return sum(1 for g in self.circuit if g.gate_type in _PI8_TYPES)

    @property
    def non_transversal_fraction(self) -> float:
        """Fraction of gates that are non-transversal (Section 3.3 quotes
        40.5% / 41.0% / 46.9% for the three benchmarks)."""
        if not self.circuit.gates:
            return 0.0
        return self.pi8_gate_count / self.total_gates

    # ------------------------------------------------------------------
    # Speed-of-data schedule and critical path

    @property
    def execution_time_us(self) -> float:
        """Speed-of-data execution time (Table 2 columns 2+3)."""
        _, finish = self._times()
        return float(finish.max()) if finish.size else 0.0

    def _critical_chain(self) -> List[int]:
        """Gate indices of one maximal chain through the ASAP schedule.

        Backwalk over the compiled predecessor CSR from the last-finishing
        gate, always following the predecessor that gates the start time
        (ties broken toward the lowest index, matching the seed's
        ``max``-over-sorted-predecessors walk). Memoized: every
        ``table2_row`` call used to rebuild a ``CircuitDag`` and re-walk
        ``ScheduleEntry`` objects; now the chain is computed once per
        analysis from flat arrays.
        """
        if self._chain is not None:
            return self._chain
        _, finish = self._times()
        if not finish.size:
            self._chain = []
            return self._chain
        from repro.circuits.compiled import dataflow_metadata

        df = dataflow_metadata(self.compiled_circuit())
        offsets, indices = df.pred_offsets, df.pred_indices
        current = int(np.argmax(finish))
        chain = [current]
        while offsets[current] != offsets[current + 1]:
            preds = indices[offsets[current]:offsets[current + 1]]
            current = int(preds[np.argmax(finish[preds])])
            chain.append(current)
        chain.reverse()
        self._chain = chain
        return chain

    def table2_row(self) -> Dict[str, float]:
        """The three Table 2 latency components and their fractions."""
        chain = self._critical_chain()
        compiled = self.compiled_circuit()
        latency, pi8_flag = compiled.latency_us, compiled.pi8_flag
        qec_interact_each = self._logical.qec_interaction_latency()
        data_op = sum(latency[i] for i in chain)
        qec_interact = qec_interact_each * len(chain)
        ancilla_prep = sum(
            self._zero_serial_us
            + (self._pi8_serial_us if pi8_flag[i] else 0.0)
            for i in chain
        )
        total = data_op + qec_interact + ancilla_prep
        return {
            "data_op_us": data_op,
            "qec_interact_us": qec_interact,
            "ancilla_prep_us": ancilla_prep,
            "data_op_frac": data_op / total if total else 0.0,
            "qec_interact_frac": qec_interact / total if total else 0.0,
            "ancilla_prep_frac": ancilla_prep / total if total else 0.0,
            "critical_path_gates": float(len(chain)),
        }

    # ------------------------------------------------------------------
    # Ancilla bandwidth (Table 3)

    @property
    def zero_ancilla_total(self) -> int:
        """Encoded zeros consumed across the whole run (2 per gate's QEC)."""
        return ZEROS_PER_QEC * self.total_gates

    @property
    def zero_bandwidth_per_ms(self) -> float:
        """Average encoded-zero bandwidth at the speed of data (Table 3)."""
        exec_ms = self.execution_time_us / 1000.0
        return self.zero_ancilla_total / exec_ms if exec_ms else 0.0

    @property
    def pi8_bandwidth_per_ms(self) -> float:
        """Average encoded-pi/8 bandwidth at the speed of data (Table 3)."""
        exec_ms = self.execution_time_us / 1000.0
        return self.pi8_gate_count / exec_ms if exec_ms else 0.0

    def table3_row(self) -> Dict[str, float]:
        return {
            "zero_bandwidth_per_ms": self.zero_bandwidth_per_ms,
            "pi8_bandwidth_per_ms": self.pi8_bandwidth_per_ms,
        }

    def compiled_circuit(self):
        """The kernel's compiled array form for the dataflow engine.

        Delegates to :func:`repro.circuits.compiled.compile_circuit`,
        which memoizes per (circuit, tech) — so every sweep, benchmark
        and comparison over this analysis shares one compilation.
        """
        from repro.circuits.compiled import compile_circuit

        return compile_circuit(self.circuit, self.tech)

    # ------------------------------------------------------------------
    # Demand profile (Figure 7)

    def ancilla_demand_profile(
        self, buckets: int = 100
    ) -> List[Tuple[float, float]]:
        """Encoded zeros that must be in flight over time (Figure 7).

        An ancilla consumed at a gate's start must exist from
        (start - preparation latency) until consumption; the profile counts,
        for each time bucket, the ancillae alive during it. Computed as a
        difference array over the flat start times: +demand at each
        gate's first bucket, -demand past its last, then a cumulative
        sum — the seed's O(gates x buckets) Python bucket loop collapses
        to three vectorized passes with bit-identical counts (integer-
        valued floats, exact under reordering).
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        horizon = self.execution_time_us
        if horizon <= 0:
            return []
        width = horizon / buckets
        prep = self._zero_serial_us
        starts, _ = self._times()
        births = np.maximum(0.0, starts - prep)
        first = np.minimum(buckets - 1, (births / width).astype(np.int64))
        last = np.minimum(buckets - 1, (starts / width).astype(np.int64))
        diff = np.zeros(buckets + 1, dtype=np.float64)
        np.add.at(diff, first, float(ZEROS_PER_QEC))
        np.add.at(diff, last + 1, -float(ZEROS_PER_QEC))
        counts = np.cumsum(diff)[:buckets]
        return [(idx * width, float(counts[idx])) for idx in range(buckets)]


def _qrca_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    regs = qrca_registers(width)
    circuit = decompose_to_encoded_gates(qrca_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QRCA",
        circuit=circuit,
        tech=tech,
        data_qubits=regs.num_qubits,
    )


def _qcla_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    regs = qcla_registers(width)
    circuit = decompose_to_encoded_gates(qcla_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QCLA",
        circuit=circuit,
        tech=tech,
        data_qubits=regs.num_qubits,
    )


def _qft_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    circuit = decompose_to_encoded_gates(qft_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QFT",
        circuit=circuit,
        tech=tech,
        data_qubits=width,
    )


_BUILDERS: Dict[str, Callable[[int, TechnologyParams], KernelAnalysis]] = {
    "qrca": _qrca_analysis,
    "qcla": _qcla_analysis,
    "qft": _qft_analysis,
}


@lru_cache(maxsize=32)
def _analyze_cached(
    kernel: str, width: int, tech: TechnologyParams
) -> KernelAnalysis:
    from repro.obs.trace import span as _span

    with _span("analyze.kernel", kernel=kernel, width=width, tech=tech.name):
        return _BUILDERS[kernel](width, tech)


def analyze_kernel(
    kernel: str,
    width: int = 32,
    tech: TechnologyParams = ION_TRAP,
    *,
    code_level: int = 1,
) -> KernelAnalysis:
    """Characterize one benchmark kernel.

    Memoized per ``(kernel, width, tech)``: kernel construction,
    decomposition and the ASAP schedule are deterministic and the
    analysis is immutable once built, so repeated callers (sweeps,
    benchmarks, reports) share one characterization instead of
    rebuilding it per sweep. Treat the returned object as read-only.

    Args:
        kernel: One of "qrca", "qcla", "qft".
        width: Bit width (32 reproduces the paper).
        tech: Technology parameters.
        code_level: Concatenation level of the error-correcting code.
            Level 1 (the default) is the paper's single Steane layer and
            changes nothing; level L re-characterizes the kernel under
            ``tech.at_level(L)`` — effective logical latencies with
            level-(L-1) blocks as the physical layer — so every
            downstream consumer (factories, sweeps, both dataflow
            engines) prices the leveled code transparently.
            ``analyze_kernel(k, w, tech, code_level=L)`` and
            ``analyze_kernel(k, w, tech.at_level(L))`` share one
            memoized characterization.
    """
    name = kernel.lower()
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {sorted(_BUILDERS)}"
        )
    if code_level != 1:
        tech = tech.at_level(code_level)
    return _analyze_cached(name, width, tech)


def standard_kernels(
    width: int = 32, tech: TechnologyParams = ION_TRAP
) -> List[KernelAnalysis]:
    """The paper's three benchmarks at the given width."""
    return [analyze_kernel(name, width, tech) for name in ("qrca", "qcla", "qft")]
