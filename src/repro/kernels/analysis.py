"""Kernel characterization: Tables 2-3 and Figure 7.

Execution model (Section 3.2): a QEC step follows every useful encoded
gate, consuming two corrected encoded-zero ancillae (bit and phase
correction, Figure 2); every pi/8-type gate additionally consumes one
encoded pi/8 ancilla. "Speed of data" is the ASAP schedule where every
gate starts as soon as its data dependencies allow, with ancillae assumed
ready — its makespan is the sum of the data-op and QEC-interaction
components (Table 2 columns 2+3).

Table 2's three components per critical-path gate:

* data op — the gate's own latency (transversal physical latency, or the
  ancilla-interaction latency for pi/8 gates);
* data/QEC interaction — 2 x (transversal CX + measure + conditional
  correct), the part of the QEC step touching data;
* ancilla prep — the data-independent preparation work, priced at the
  serial (non-overlapped) preparation latency: two Figure 4c encoded zeros
  per QEC step plus the pi/8 pipeline for non-transversal gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits import Circuit, asap_schedule
from repro.circuits.gate import PI8_CONSUMING_GATES, Gate, GateType
from repro.circuits.latency import LogicalLatencyModel
from repro.factory.simple import SimpleZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.kernels.decompose import decompose_to_encoded_gates
from repro.kernels.qcla import qcla_circuit, qcla_registers
from repro.kernels.qft import qft_circuit
from repro.kernels.qrca import qrca_circuit, qrca_registers
from repro.tech import ION_TRAP, TechnologyParams

#: Corrected encoded-zero ancillae consumed per QEC step (bit + phase).
ZEROS_PER_QEC = 2

_PI8_TYPES = PI8_CONSUMING_GATES


@dataclass(frozen=True)
class QecAwareLatency:
    """Gate latency including the data-side QEC interaction that follows.

    Used to compute the speed-of-data makespan (Table 2 columns 2+3): the
    qubit is busy for the gate plus its QEC step before the next gate can
    touch it.
    """

    logical: LogicalLatencyModel

    def gate_latency(self, gate: Gate) -> float:
        return self.logical.gate_latency(gate) + self.logical.qec_interaction_latency()


@dataclass
class KernelAnalysis:
    """Characterization of one benchmark kernel.

    Attributes:
        name: Kernel name (e.g. "32-Bit QRCA").
        circuit: The decomposed (encoded-gate-set) circuit.
        tech: Technology parameters.
        data_qubits: Number of encoded data qubits including data ancillae
            (drives Table 9's data area).
    """

    name: str
    circuit: Circuit
    tech: TechnologyParams
    data_qubits: int

    def __post_init__(self) -> None:
        self._logical = LogicalLatencyModel(self.tech)
        self._schedule = asap_schedule(self.circuit, QecAwareLatency(self._logical))
        # One full Figure 4c preparation per QEC step: the bit- and
        # phase-correction ancillae are produced as a pair by the same
        # factory pass (Figure 11 corrects the middle ancilla with both
        # neighbours in one schedule), so the pair costs one serial latency.
        self._zero_serial_us = SimpleZeroFactory(self.tech).latency_us
        # The pi/8 conversion pipeline runs downstream of zero production;
        # its input zero is prepared concurrently with the QEC zeros.
        self._pi8_serial_us = Pi8Factory(self.tech).serial_latency_us()

    # ------------------------------------------------------------------
    # Raw counts

    @property
    def total_gates(self) -> int:
        return len(self.circuit)

    @property
    def pi8_gate_count(self) -> int:
        """Gates consuming an encoded pi/8 ancilla."""
        return sum(1 for g in self.circuit if g.gate_type in _PI8_TYPES)

    @property
    def non_transversal_fraction(self) -> float:
        """Fraction of gates that are non-transversal (Section 3.3 quotes
        40.5% / 41.0% / 46.9% for the three benchmarks)."""
        if not self.circuit.gates:
            return 0.0
        return self.pi8_gate_count / self.total_gates

    # ------------------------------------------------------------------
    # Speed-of-data schedule and critical path

    @property
    def execution_time_us(self) -> float:
        """Speed-of-data execution time (Table 2 columns 2+3)."""
        return max((e.finish for e in self._schedule), default=0.0)

    def _critical_path_entries(self):
        """One maximal chain through the QEC-aware ASAP schedule."""
        if not self._schedule:
            return []
        from repro.circuits.dag import CircuitDag

        dag = CircuitDag(self.circuit)
        current = max(self._schedule, key=lambda e: e.finish)
        chain = [current]
        while True:
            preds = dag.predecessors(current.index)
            if not preds:
                break
            blocker = max((self._schedule[p] for p in preds), key=lambda e: e.finish)
            chain.append(blocker)
            current = blocker
        chain.reverse()
        return chain

    def table2_row(self) -> Dict[str, float]:
        """The three Table 2 latency components and their fractions."""
        chain = self._critical_path_entries()
        qec_interact_each = self._logical.qec_interaction_latency()
        data_op = sum(
            self._logical.gate_latency(e.gate) for e in chain
        )
        qec_interact = qec_interact_each * len(chain)
        ancilla_prep = sum(
            self._zero_serial_us
            + (self._pi8_serial_us if e.gate.gate_type in _PI8_TYPES else 0.0)
            for e in chain
        )
        total = data_op + qec_interact + ancilla_prep
        return {
            "data_op_us": data_op,
            "qec_interact_us": qec_interact,
            "ancilla_prep_us": ancilla_prep,
            "data_op_frac": data_op / total if total else 0.0,
            "qec_interact_frac": qec_interact / total if total else 0.0,
            "ancilla_prep_frac": ancilla_prep / total if total else 0.0,
            "critical_path_gates": float(len(chain)),
        }

    # ------------------------------------------------------------------
    # Ancilla bandwidth (Table 3)

    @property
    def zero_ancilla_total(self) -> int:
        """Encoded zeros consumed across the whole run (2 per gate's QEC)."""
        return ZEROS_PER_QEC * self.total_gates

    @property
    def zero_bandwidth_per_ms(self) -> float:
        """Average encoded-zero bandwidth at the speed of data (Table 3)."""
        exec_ms = self.execution_time_us / 1000.0
        return self.zero_ancilla_total / exec_ms if exec_ms else 0.0

    @property
    def pi8_bandwidth_per_ms(self) -> float:
        """Average encoded-pi/8 bandwidth at the speed of data (Table 3)."""
        exec_ms = self.execution_time_us / 1000.0
        return self.pi8_gate_count / exec_ms if exec_ms else 0.0

    def table3_row(self) -> Dict[str, float]:
        return {
            "zero_bandwidth_per_ms": self.zero_bandwidth_per_ms,
            "pi8_bandwidth_per_ms": self.pi8_bandwidth_per_ms,
        }

    def compiled_circuit(self):
        """The kernel's compiled array form for the dataflow engine.

        Delegates to :func:`repro.circuits.compiled.compile_circuit`,
        which memoizes per (circuit, tech) — so every sweep, benchmark
        and comparison over this analysis shares one compilation.
        """
        from repro.circuits.compiled import compile_circuit

        return compile_circuit(self.circuit, self.tech)

    # ------------------------------------------------------------------
    # Demand profile (Figure 7)

    def ancilla_demand_profile(
        self, buckets: int = 100
    ) -> List[Tuple[float, float]]:
        """Encoded zeros that must be in flight over time (Figure 7).

        An ancilla consumed at a gate's start must exist from
        (start - preparation latency) until consumption; the profile counts,
        for each time bucket, the ancillae alive during it.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        horizon = self.execution_time_us
        if horizon <= 0:
            return []
        width = horizon / buckets
        prep = self._zero_serial_us
        counts = [0.0] * buckets
        for entry in self._schedule:
            birth = max(0.0, entry.start - prep)
            death = entry.start
            first = min(buckets - 1, int(birth / width))
            last = min(buckets - 1, int(death / width))
            for idx in range(first, last + 1):
                counts[idx] += ZEROS_PER_QEC
        return [(idx * width, counts[idx]) for idx in range(buckets)]


def _qrca_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    regs = qrca_registers(width)
    circuit = decompose_to_encoded_gates(qrca_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QRCA",
        circuit=circuit,
        tech=tech,
        data_qubits=regs.num_qubits,
    )


def _qcla_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    regs = qcla_registers(width)
    circuit = decompose_to_encoded_gates(qcla_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QCLA",
        circuit=circuit,
        tech=tech,
        data_qubits=regs.num_qubits,
    )


def _qft_analysis(width: int, tech: TechnologyParams) -> KernelAnalysis:
    circuit = decompose_to_encoded_gates(qft_circuit(width))
    return KernelAnalysis(
        name=f"{width}-Bit QFT",
        circuit=circuit,
        tech=tech,
        data_qubits=width,
    )


_BUILDERS: Dict[str, Callable[[int, TechnologyParams], KernelAnalysis]] = {
    "qrca": _qrca_analysis,
    "qcla": _qcla_analysis,
    "qft": _qft_analysis,
}


@lru_cache(maxsize=32)
def _analyze_cached(
    kernel: str, width: int, tech: TechnologyParams
) -> KernelAnalysis:
    return _BUILDERS[kernel](width, tech)


def analyze_kernel(
    kernel: str, width: int = 32, tech: TechnologyParams = ION_TRAP
) -> KernelAnalysis:
    """Characterize one benchmark kernel.

    Memoized per ``(kernel, width, tech)``: kernel construction,
    decomposition and the ASAP schedule are deterministic and the
    analysis is immutable once built, so repeated callers (sweeps,
    benchmarks, reports) share one characterization instead of
    rebuilding it per sweep. Treat the returned object as read-only.

    Args:
        kernel: One of "qrca", "qcla", "qft".
        width: Bit width (32 reproduces the paper).
        tech: Technology parameters.
    """
    name = kernel.lower()
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {sorted(_BUILDERS)}"
        )
    return _analyze_cached(name, width, tech)


def standard_kernels(
    width: int = 32, tech: TechnologyParams = ION_TRAP
) -> List[KernelAnalysis]:
    """The paper's three benchmarks at the given width."""
    return [analyze_kernel(name, width, tech) for name in ("qrca", "qcla", "qft")]
