"""Classical bit-vector evaluation of reversible circuits.

The adder kernels are classical reversible circuits (X / CX / CCX / SWAP
on computational-basis states), so their functional correctness — QRCA and
QCLA actually computing a + b — is checked by propagating basis states
through the gate list. Gates outside the reversible set raise, which also
guards against accidentally grading a non-classical kernel this way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits import Circuit
from repro.circuits.gate import GateType


def evaluate_reversible(circuit: Circuit, bits: Sequence[int]) -> List[int]:
    """Propagate a basis state through a reversible circuit.

    Args:
        circuit: Circuit containing only X, CX, CCX and SWAP gates.
        bits: Initial bit per qubit (length must equal circuit width).

    Returns:
        Final bit values per qubit.
    """
    if len(bits) != circuit.num_qubits:
        raise ValueError(
            f"state has {len(bits)} bits, circuit has {circuit.num_qubits} qubits"
        )
    state = [int(b) & 1 for b in bits]
    for gate in circuit:
        gt = gate.gate_type
        if gt is GateType.X:
            state[gate.qubits[0]] ^= 1
        elif gt is GateType.CX:
            control, target = gate.qubits
            state[target] ^= state[control]
        elif gt is GateType.CCX:
            c1, c2, target = gate.qubits
            state[target] ^= state[c1] & state[c2]
        elif gt is GateType.SWAP:
            q1, q2 = gate.qubits
            state[q1], state[q2] = state[q2], state[q1]
        else:
            raise ValueError(
                f"gate {gate.describe()} is not classically evaluable"
            )
    return state


def pack_bits(value: int, width: int) -> List[int]:
    """Little-endian bit decomposition of ``value``."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def unpack_bits(bits: Sequence[int]) -> int:
    """Little-endian bit composition."""
    return sum((int(b) & 1) << i for i, b in enumerate(bits))


def run_adder(
    circuit: Circuit,
    a_qubits: Sequence[int],
    b_qubits: Sequence[int],
    sum_qubits: Sequence[int],
    a: int,
    b: int,
    ancilla_qubits: Sequence[int] = (),
) -> Dict[str, int]:
    """Drive an adder circuit with operand values and read back results.

    Returns a dict with the output ``sum`` and the final ``a`` register
    value, plus ``ancilla`` (which should be 0 for clean uncompute).
    """
    bits = [0] * circuit.num_qubits
    for q, bit in zip(a_qubits, pack_bits(a, len(a_qubits))):
        bits[q] = bit
    for q, bit in zip(b_qubits, pack_bits(b, len(b_qubits))):
        bits[q] = bit
    final = evaluate_reversible(circuit, bits)
    return {
        "sum": unpack_bits([final[q] for q in sum_qubits]),
        "a": unpack_bits([final[q] for q in a_qubits]),
        "ancilla": unpack_bits([final[q] for q in ancilla_qubits]),
    }
