"""The Quantum Fourier Transform kernel (Sections 2.5 and 3.1).

The standard QFT circuit: a Hadamard per qubit followed by controlled
phase rotations by pi/2^k for k = 1 .. distance. Rotations are carried
symbolically as CRZ gates here; lowering to the encoded gate set (CZ for
k=1, Clifford+T for k=2, Fowler H/T sequences beyond — Section 2.5)
happens in :mod:`repro.kernels.decompose`.

A ``max_rotation_k`` cutoff is provided because truncating tiny rotations
is standard practice and the paper's own synthesis has finite precision;
the default keeps every rotation, matching the paper's 32-bit QFT.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits import Circuit


def qft_circuit(
    width: int = 32,
    include_swaps: bool = False,
    max_rotation_k: Optional[int] = None,
) -> Circuit:
    """Build the width-qubit QFT.

    Args:
        width: Number of qubits.
        include_swaps: Append the bit-reversal swap network (off by
            default; the paper's kernel counts computation gates).
        max_rotation_k: Drop controlled rotations with k above this
            (approximate QFT); None keeps all.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if max_rotation_k is not None and max_rotation_k < 1:
        raise ValueError(f"max_rotation_k must be >= 1, got {max_rotation_k}")
    circ = Circuit(width, name=f"qft{width}")
    for i in range(width):
        circ.h(i)
        for j in range(i + 1, width):
            k = j - i + 1
            if max_rotation_k is not None and k > max_rotation_k:
                break
            circ.crz(j, i, k=k)
    if include_swaps:
        for i in range(width // 2):
            circ.swap(i, width - 1 - i)
    return circ


def qft_rotation_count(width: int, max_rotation_k: Optional[int] = None) -> int:
    """Number of controlled rotations in the QFT (n(n-1)/2 untruncated)."""
    if max_rotation_k is None:
        return width * (width - 1) // 2
    total = 0
    for i in range(width):
        total += min(width - 1 - i, max_rotation_k - 1)
    return total
