"""Benchmark kernels (Section 3.1) and their characterization.

The paper's three benchmarks, all parameterized by bit width here:

* :mod:`repro.kernels.qrca` — the Quantum Ripple-Carry Adder
  (Vedral-Barenco-Ekert structure: two n-bit inputs plus n+1 ancillae);
* :mod:`repro.kernels.qcla` — the Draper-Kutin-Rains-Svore
  logarithmic-depth Quantum Carry-Lookahead Adder (out-of-place);
* :mod:`repro.kernels.qft` — the Quantum Fourier Transform with
  controlled rotations synthesized per Section 2.5.

Supporting machinery:

* :mod:`repro.kernels.classical` — bit-vector evaluation of reversible
  circuits, used to property-test adder correctness;
* :mod:`repro.kernels.decompose` — lowering to the [[7,1,3]] encoded gate
  set (transversal gates plus T);
* :mod:`repro.kernels.analysis` — critical-path and ancilla-bandwidth
  characterization (Tables 2-3, Figure 7).
"""

from repro.kernels.analysis import KernelAnalysis, analyze_kernel, standard_kernels
from repro.kernels.classical import evaluate_reversible
from repro.kernels.decompose import decompose_to_encoded_gates
from repro.kernels.qcla import qcla_circuit
from repro.kernels.qft import qft_circuit
from repro.kernels.qrca import qrca_circuit

__all__ = [
    "KernelAnalysis",
    "analyze_kernel",
    "decompose_to_encoded_gates",
    "evaluate_reversible",
    "qcla_circuit",
    "qcla_circuit",
    "qft_circuit",
    "qrca_circuit",
    "standard_kernels",
]
