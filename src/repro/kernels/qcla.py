"""The Quantum Carry-Lookahead Adder (Section 3.1).

The out-of-place logarithmic-depth adder of Draper, Kutin, Rains and Svore
(the paper's citation [19]). Carries are computed by a Brent-Kung-style
prefix tree over propagate/generate bits in O(log n) Toffoli depth, which
is what gives the QCLA its roughly order-of-magnitude higher encoded
ancilla bandwidth demand than the serial ripple-carry adder (Table 3).

Register layout (width n):
    a_i       : qubits [0, n)          first addend (unchanged)
    b_i       : qubits [n, 2n)         second addend (unchanged at the end)
    z_j       : qubits [2n, 3n+1)      output sum s_0..s_n
    P_t[i]    : qubits [3n+1, ...)     propagate-tree ancillae (restored)

For n=32 this uses 123 qubits — matching the paper's Table 9 data area of
861 macroblocks at 7 physical qubits per encoded qubit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.circuits import Circuit


def _floor_log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True)
class QclaRegisters:
    """Qubit index map for a width-n out-of-place QCLA."""

    width: int
    _p_tree: Dict[Tuple[int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        n = self.width
        next_index = 3 * n + 1
        tree: Dict[Tuple[int, int], int] = {}
        for t in range(1, _floor_log2(n) + 1):
            for i in range(1, n // (2 ** t)):
                tree[(t, i)] = next_index
                next_index += 1
        object.__setattr__(self, "_p_tree", tree)

    @property
    def a(self) -> List[int]:
        return list(range(0, self.width))

    @property
    def b(self) -> List[int]:
        return list(range(self.width, 2 * self.width))

    @property
    def z(self) -> List[int]:
        """Sum register z_0..z_n (n+1 qubits)."""
        return list(range(2 * self.width, 3 * self.width + 1))

    def p(self, t: int, i: int) -> int:
        """Qubit holding P_t[i]; P_0[i] is aliased onto b_i."""
        if t == 0:
            return self.b[i]
        return self._p_tree[(t, i)]

    def has_p(self, t: int, i: int) -> bool:
        return t == 0 or (t, i) in self._p_tree

    @property
    def tree_ancillae(self) -> int:
        return len(self._p_tree)

    @property
    def num_qubits(self) -> int:
        return 3 * self.width + 1 + self.tree_ancillae

    @property
    def data_ancillae(self) -> int:
        """Long-lived ancillae beyond the two inputs: sum + tree."""
        return self.width + 1 + self.tree_ancillae


def _p_rounds(circ: Circuit, regs: QclaRegisters, inverse: bool = False) -> None:
    """Propagate tree: P_t[i] = P_{t-1}[2i] AND P_{t-1}[2i+1]."""
    n = regs.width
    rounds = range(1, _floor_log2(n) + 1)
    for t in (reversed(rounds) if inverse else rounds):
        for i in range(1, n // (2 ** t)):
            circ.ccx(regs.p(t - 1, 2 * i), regs.p(t - 1, 2 * i + 1), regs.p(t, i))


def _g_rounds(circ: Circuit, regs: QclaRegisters) -> None:
    """Generate sweep: G[m + 2^t] ^= P_{t-1}[2i+1] AND G[m + 2^{t-1}]
    for m = i * 2^t — carries at power-of-two strides."""
    n = regs.width
    z = regs.z
    for t in range(1, _floor_log2(n) + 1):
        for i in range(0, n // (2 ** t)):
            base = i * (2 ** t)
            circ.ccx(regs.p(t - 1, 2 * i + 1), z[base + 2 ** (t - 1)], z[base + 2 ** t])


def _c_rounds(circ: Circuit, regs: QclaRegisters) -> None:
    """Carry fill-in sweep for positions off the power-of-two spine."""
    n = regs.width
    z = regs.z
    top = _floor_log2(2 * n // 3) if n >= 2 else 0
    for t in range(top, 0, -1):
        for i in range(1, (n - 2 ** (t - 1)) // (2 ** t) + 1):
            base = i * (2 ** t)
            circ.ccx(regs.p(t - 1, 2 * i), z[base], z[base + 2 ** (t - 1)])


def qcla_circuit(width: int = 32, restore_inputs: bool = True) -> Circuit:
    """Build the out-of-place carry-lookahead adder: z <- a + b.

    Args:
        width: Operand bit width.
        restore_inputs: Undo the propagate transformation on b at the end,
            leaving both inputs intact (the textbook out-of-place contract).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    regs = QclaRegisters(width)
    circ = Circuit(regs.num_qubits, name=f"qcla{width}")
    a, b, z = regs.a, regs.b, regs.z
    # Generates into z, propagates into b.
    for i in range(width):
        circ.ccx(a[i], b[i], z[i + 1])
    for i in range(width):
        circ.cx(a[i], b[i])
    # Carry tree.
    _p_rounds(circ, regs)
    _g_rounds(circ, regs)
    _c_rounds(circ, regs)
    _p_rounds(circ, regs, inverse=True)
    # Sums: z_i = c_i XOR p_i.
    for i in range(width):
        circ.cx(b[i], z[i])
    if restore_inputs:
        for i in range(width):
            circ.cx(a[i], b[i])
    return circ


def qcla_registers(width: int = 32) -> QclaRegisters:
    return QclaRegisters(width)
