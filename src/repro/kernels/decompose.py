"""Lowering circuits to the [[7,1,3]] encoded gate set.

The target set is: transversal gates (X/Y/Z/H/S/S_DAG/CX/CZ, measurements,
preps) plus the ancilla-implemented T/T_DAG. Everything else rewrites:

* CCX (Toffoli) — the standard 15-gate Clifford+T network (7 T-layer
  gates, 6 CX, 2 H);
* CS — 3 T-layer gates and 2 CX;
* CRZ(pi/2^k) — CZ when k=1, the CS network when k=2, otherwise two CX
  and three single-qubit pi/2^(k+1) rotations (Section 2.5);
* RZ(pi/2^k) — exact for k <= 2, else a Fowler H/T sequence
  (:mod:`repro.ancilla.rotations`);
* SWAP — three CX.

The pass is idempotent on already-lowered circuits.
"""

from __future__ import annotations

from typing import Optional

from repro.ancilla.rotations import RotationSynthesizer, default_synthesizer
from repro.circuits import Circuit
from repro.circuits.gate import Gate, GateType

#: Gate types legal in the lowered circuit.
ENCODED_GATE_SET = frozenset(
    {
        GateType.PREP_0,
        GateType.PREP_PLUS,
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.S,
        GateType.S_DAG,
        GateType.T,
        GateType.T_DAG,
        GateType.CX,
        GateType.CZ,
        GateType.MEASURE_Z,
        GateType.MEASURE_X,
    }
)


def _emit_ccx(circ: Circuit, a: int, b: int, t: int) -> None:
    """Standard 7-T Toffoli decomposition."""
    circ.h(t)
    circ.cx(b, t)
    circ.tdg(t)
    circ.cx(a, t)
    circ.t(t)
    circ.cx(b, t)
    circ.tdg(t)
    circ.cx(a, t)
    circ.t(b)
    circ.t(t)
    circ.h(t)
    circ.cx(a, b)
    circ.t(a)
    circ.tdg(b)
    circ.cx(a, b)


def _emit_cs(circ: Circuit, a: int, b: int) -> None:
    """Controlled-S from T gates: T a, T b, CX, Tdg b, CX."""
    circ.t(a)
    circ.t(b)
    circ.cx(a, b)
    circ.tdg(b)
    circ.cx(a, b)


def _emit_rotation(
    circ: Circuit, qubit: int, k: int, synthesizer: RotationSynthesizer,
    inverse: bool = False,
) -> None:
    """Emit RZ(pi/2^k) (or its inverse) as an exact or synthesized word."""
    if k == 0:
        circ.z(qubit)
        return
    if k == 1:
        (circ.sdg if inverse else circ.s)(qubit)
        return
    if k == 2:
        (circ.tdg if inverse else circ.t)(qubit)
        return
    word = synthesizer.synthesize(k).gates
    if inverse:
        word = tuple(reversed([_adjoint(g) for g in word]))
    for gate_type in word:
        _EMITTERS[gate_type](circ, qubit)


def _adjoint(gate_type: GateType) -> GateType:
    return {
        GateType.H: GateType.H,
        GateType.T: GateType.T_DAG,
        GateType.T_DAG: GateType.T,
        GateType.S: GateType.S_DAG,
        GateType.S_DAG: GateType.S,
        GateType.Z: GateType.Z,
    }[gate_type]


_EMITTERS = {
    GateType.H: lambda c, q: c.h(q),
    GateType.T: lambda c, q: c.t(q),
    GateType.T_DAG: lambda c, q: c.tdg(q),
    GateType.S: lambda c, q: c.s(q),
    GateType.S_DAG: lambda c, q: c.sdg(q),
    GateType.Z: lambda c, q: c.z(q),
}


def _emit_crz(
    circ: Circuit, control: int, target: int, k: int,
    synthesizer: RotationSynthesizer,
) -> None:
    """Controlled-RZ(pi/2^k): Section 2.5's CX-plus-three-rotations form."""
    if k == 1:
        circ.cz(control, target)
        return
    if k == 2:
        _emit_cs(circ, control, target)
        return
    _emit_rotation(circ, control, k + 1, synthesizer)
    _emit_rotation(circ, target, k + 1, synthesizer)
    circ.cx(control, target)
    _emit_rotation(circ, target, k + 1, synthesizer, inverse=True)
    circ.cx(control, target)


def validate_code_gate_set(code) -> None:
    """Check that ``code`` supports the encoded target gate set.

    The lowering targets transversal X/Y/Z/H/S/CX/CZ plus the
    ancilla-implemented pi/8 gate — legal exactly on self-dual CSS codes
    with a single encoded qubit (bitwise H implements logical H and
    bitwise S-dagger implements logical S). The [[7,1,3]] Steane code and
    every self-concatenation of it qualify; anything else must bring its
    own gate set and is rejected here rather than silently mislowered.
    """
    import numpy as np

    if code.k != 1:
        raise ValueError(
            f"{code.name}: decomposition targets single-qubit blocks (k=1), "
            f"got k={code.k}"
        )
    if not (
        np.array_equal(
            np.asarray(code.x_stabilizers) % 2, np.asarray(code.z_stabilizers) % 2
        )
        and np.array_equal(
            np.asarray(code.logical_x) % 2, np.asarray(code.logical_z) % 2
        )
    ):
        raise ValueError(
            f"{code.name}: the encoded gate set assumes a self-dual CSS code "
            "(transversal H/S); supply a code-specific lowering instead"
        )


def decompose_to_encoded_gates(
    circuit: Circuit,
    synthesizer: Optional[RotationSynthesizer] = None,
    *,
    code=None,
) -> Circuit:
    """Lower a circuit to the encoded gate set of the active code.

    Args:
        circuit: Any circuit over this library's gate set.
        synthesizer: Rotation synthesizer for pi/2^k angles with k >= 3;
            the shared default is used when omitted.
        code: The code the encoded gates will run on (``None`` assumes
            the paper's [[7,1,3]] family). The target gate set is
            identical for every code this library admits — self-dual CSS,
            which includes every :class:`~repro.codes.ConcatenatedCode`
            over the Steane base — so the code only *validates* here; a
            non-self-dual code fails loudly instead of being mislowered.

    Returns:
        A new circuit containing only :data:`ENCODED_GATE_SET` gates.
    """
    if code is not None:
        validate_code_gate_set(code)
    synth = synthesizer or default_synthesizer()
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_encoded")
    for gate in circuit:
        gt = gate.gate_type
        if gt in ENCODED_GATE_SET:
            out.append(gate)
        elif gt is GateType.CCX:
            _emit_ccx(out, *gate.qubits)
        elif gt is GateType.CS:
            _emit_cs(out, *gate.qubits)
        elif gt is GateType.CRZ:
            _emit_crz(out, gate.qubits[0], gate.qubits[1], gate.angle_k, synth)
        elif gt is GateType.RZ:
            _emit_rotation(out, gate.qubits[0], gate.angle_k, synth)
        elif gt is GateType.SWAP:
            a, b = gate.qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        else:
            raise ValueError(f"cannot lower gate {gate.describe()}")
    return out
