"""Architecture configurations: QLA, CQLA and Fully-Multiplexed.

Each configuration knows how to turn a total ancilla-factory area budget
into supply rates (using the pipelined factory costs of Section 4.4) and
what movement discipline data qubits follow:

* QLA teleports operands together and back home for every two-qubit gate;
* CQLA runs gates inside a compute cache, teleporting misses in and
  writebacks out through a limited number of cache ports;
* Fully-Multiplexed keeps data in dense regions traversed ballistically.

Area-to-rate conversion uses the factory "exchange rates":

* a corrected encoded zero per millisecond costs 298 / 10.5 macroblocks;
* an encoded pi/8 per millisecond costs 403 / 18.3 macroblocks for the
  conversion pipeline plus one zero per output from supplying zero
  factories (Section 5.1's Table 9 convention).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.supply import (
    PI8,
    ZERO,
    AncillaSupply,
    DedicatedSupply,
    PooledSupply,
)
from repro.factory.pipelined import PipelinedZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.tech import ION_TRAP, TechnologyParams


class ArchitectureKind(enum.Enum):
    QLA = "qla"
    CQLA = "cqla"
    MULTIPLEXED = "multiplexed"


def teleport_latency(tech: TechnologyParams) -> float:
    """Data-side latency of one encoded teleport.

    Bell-pair distribution happens offline; the data-visible cost is a
    transversal CX with the local Bell half, a transversal measurement,
    and the classically conditioned correction at the destination, plus
    channel entry/exit movement.
    """
    return tech.t_2q + tech.t_meas + tech.t_1q + 2 * tech.t_turn + 2 * tech.t_move


def ballistic_hop_latency(tech: TechnologyParams, region_span: int = 8) -> float:
    """Typical ballistic traversal inside a dense data region.

    Data regions pack encoded qubits so tightly (Figure 16b) that a
    typical operand trip crosses a handful of macroblocks and one corner.
    """
    return region_span * tech.t_move + tech.t_turn


_EXCHANGE_RATES: Dict[TechnologyParams, Tuple[float, float]] = {}


def factory_exchange_rates(
    tech: TechnologyParams = ION_TRAP,
) -> Tuple[float, float]:
    """(macroblocks per zero/ms, macroblocks per pi8/ms incl. supply).

    Memoized per technology: every ``build_supply`` of a sweep point
    prices its area budget through this conversion, and the factory
    models it instantiates are pure functions of the (frozen, hashable)
    technology record.
    """
    cached = _EXCHANGE_RATES.get(tech)
    if cached is None:
        zero = PipelinedZeroFactory(tech)
        pi8 = Pi8Factory(tech)
        zero_cost = zero.area / zero.throughput_per_ms
        cached = (zero_cost, pi8.area / pi8.throughput_per_ms + zero_cost)
        _EXCHANGE_RATES[tech] = cached
    return cached


def demand_area_for_rates(
    zero_per_ms: float,
    pi8_per_ms: float,
    tech: TechnologyParams = ION_TRAP,
) -> float:
    """Factory area (macroblocks) sustaining the given steady rates.

    The single pricing rule both directions share: :func:`split_area`
    inverts it to turn an area budget into rates, and
    :func:`repro.arch.provisioning.factory_area_for_rates` exposes it to
    price steady-supply operating points.
    """
    zero_cost, pi8_cost = factory_exchange_rates(tech)
    return zero_per_ms * zero_cost + pi8_per_ms * pi8_cost


def split_area(
    area: float,
    zero_demand_per_ms: float,
    pi8_demand_per_ms: float,
    tech: TechnologyParams = ION_TRAP,
) -> Dict[str, float]:
    """Divide a factory-area budget into per-kind production rates.

    The split keeps the two kinds in the ratio the kernel demands, so
    scaling total area scales both bandwidths proportionally.
    """
    if area < 0:
        raise ValueError(f"area must be >= 0, got {area}")
    demand_area = demand_area_for_rates(
        zero_demand_per_ms, pi8_demand_per_ms, tech
    )
    if demand_area <= 0:
        return {ZERO: 0.0, PI8: 0.0}
    scale = area / demand_area
    return {
        ZERO: zero_demand_per_ms * scale,
        PI8: pi8_demand_per_ms * scale,
    }


@dataclass(frozen=True)
class QlaConfig:
    """QLA: per-qubit dedicated generators, teleport-everywhere movement."""

    kind: ArchitectureKind = ArchitectureKind.QLA
    name: str = "QLA"

    def build_supply(
        self,
        area: float,
        num_qubits: int,
        zero_demand: float,
        pi8_demand: float,
        tech: TechnologyParams,
    ) -> AncillaSupply:
        rates = split_area(area, zero_demand, pi8_demand, tech)
        per_qubit = {kind: rate / num_qubits for kind, rate in rates.items()}
        return DedicatedSupply(per_qubit, num_qubits)

    def movement_penalty(self, is_two_qubit: bool, tech: TechnologyParams) -> float:
        """Operands teleport to meet and teleport back home (Section 5.2:
        'data qubits are always moved back to their home base')."""
        if is_two_qubit:
            return 2 * teleport_latency(tech)
        return 0.0


@dataclass(frozen=True)
class CqlaConfig:
    """CQLA: compute cache with miss/writeback teleports via shared ports.

    Attributes:
        cache_fraction: Compute-cache capacity as a fraction of the data
            qubit count. The default (1/8) reflects CQLA's compute cache
            being a small slice of the full datapath.
        ports: Concurrent teleports the cache boundary supports; traffic
            beyond this serializes (the structural bottleneck behind
            CQLA's plateau in Figure 15).
    """

    cache_fraction: float = 0.125
    ports: int = 2
    kind: ArchitectureKind = ArchitectureKind.CQLA
    name: str = "CQLA"

    def __post_init__(self) -> None:
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in (0, 1]")
        if self.ports < 1:
            raise ValueError("ports must be >= 1")

    def cache_size(self, num_qubits: int) -> int:
        return max(2, int(num_qubits * self.cache_fraction))

    def build_supply(
        self,
        area: float,
        num_qubits: int,
        zero_demand: float,
        pi8_demand: float,
        tech: TechnologyParams,
    ) -> AncillaSupply:
        """Generators serve the compute cache as a pool (the cache region
        is shared hardware, unlike QLA's per-qubit cells)."""
        return PooledSupply(split_area(area, zero_demand, pi8_demand, tech))

    def movement_penalty(self, is_two_qubit: bool, tech: TechnologyParams) -> float:
        """In-cache operand movement for two-qubit gates; one-qubit gates
        run in place. Miss costs are charged by the simulator."""
        return ballistic_hop_latency(tech) if is_two_qubit else 0.0


@dataclass(frozen=True)
class MultiplexedConfig:
    """Fully-Multiplexed distribution: shared factories, ballistic data."""

    region_span: int = 8
    kind: ArchitectureKind = ArchitectureKind.MULTIPLEXED
    name: str = "Fully-Multiplexed"

    def build_supply(
        self,
        area: float,
        num_qubits: int,
        zero_demand: float,
        pi8_demand: float,
        tech: TechnologyParams,
    ) -> AncillaSupply:
        return PooledSupply(split_area(area, zero_demand, pi8_demand, tech))

    def movement_penalty(self, is_two_qubit: bool, tech: TechnologyParams) -> float:
        """Operands meet ballistically for two-qubit gates; one-qubit
        gates run in place (data regions are data-only, Figure 16b)."""
        return ballistic_hop_latency(tech, self.region_span) if is_two_qubit else 0.0


@dataclass(frozen=True)
class GqlaConfig(QlaConfig):
    """GQLA: QLA with replicated per-qubit ancilla generation.

    Section 5.2: "we generalize this to GQLA and GCQLA in which we
    replicate the ancilla area at each data qubit to allow parallel
    production of ancillae." Replication multiplies each qubit's private
    production rate; the generators remain dedicated, so the architecture
    still cannot shift idle capacity to busy qubits — it buys down the
    per-qubit starvation, not the imbalance.

    Attributes:
        replication: Ancilla-generation copies per data qubit. The area
            budget is spread over ``num_qubits * replication`` generators
            that happen to be co-located, so at fixed total area GQLA
            behaves like QLA; the knob matters when area is derived from
            a per-qubit hardware allowance instead.
    """

    replication: int = 2
    name: str = "GQLA"

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")

    def per_qubit_area(self, zero_factory_area: int = 298) -> int:
        """Hardware allowance per data qubit under this replication."""
        return self.replication * zero_factory_area

    def area_for(self, num_qubits: int, zero_factory_area: int = 298) -> int:
        """Total generation area implied by the per-qubit allowance."""
        return num_qubits * self.per_qubit_area(zero_factory_area)


def architecture_for_area(kind: ArchitectureKind):
    """Default configuration instance for an architecture kind."""
    return {
        ArchitectureKind.QLA: QlaConfig(),
        ArchitectureKind.CQLA: CqlaConfig(),
        ArchitectureKind.MULTIPLEXED: MultiplexedConfig(),
    }[kind]
