"""Microarchitecture models and event-based dataflow simulation (Section 5).

Compares three ways of organizing a quantum chip (Figure 14):

* **QLA** — a dedicated ancilla generator per data qubit; data returns
  home for error correction after every gate, so inter-qubit operations
  teleport (Metodi et al., the paper's [22]);
* **CQLA** — QLA plus a compute cache holding the working set; gates on
  uncached qubits pay miss/writeback teleports through limited cache
  ports (Thaker et al., the paper's [15]);
* **Fully-Multiplexed** — shared ancilla factories feeding any data qubit
  on demand, with ballistic movement inside dense data regions (the
  paper's proposal, realized as the Qalypso tile of Figure 16).

Modules:

* :mod:`repro.arch.supply` — ancilla production models (infinite, steady
  rate, pooled, per-qubit dedicated) and the declarative ready-spec
  protocol that lets every model lower into the array engines;
* :mod:`repro.arch.simulator` — the event-based dataflow simulator
  (Section 5.2's methodology);
* :mod:`repro.arch.batched` — the point-batched engine: one numpy pass
  simulates a whole sweep of design points, bit-identical per point;
* :mod:`repro.arch.architectures` — the three architecture configurations;
* :mod:`repro.arch.sweep` — the Figure 8 throughput sweep and Figure 15
  area sweep;
* :mod:`repro.arch.provisioning` — Table 9 area breakdowns;
* :mod:`repro.arch.qalypso` — Qalypso tile accounting (Section 5.3).
"""

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
    architecture_for_area,
)
from repro.arch.batched import simulate_batch
from repro.arch.provisioning import AreaBreakdown, area_breakdown
from repro.arch.simulator import DataflowSimulator, SimulationResult
from repro.arch.supply import (
    DedicatedKindSpec,
    DedicatedSupply,
    InfiniteSupply,
    PooledSupply,
    ReadySpec,
    SteadyKindSpec,
    SteadyRateSupply,
    declared_ready_spec,
)
from repro.arch.sweep import area_sweep, throughput_sweep

__all__ = [
    "ArchitectureKind",
    "AreaBreakdown",
    "CqlaConfig",
    "DataflowSimulator",
    "DedicatedKindSpec",
    "DedicatedSupply",
    "InfiniteSupply",
    "MultiplexedConfig",
    "PooledSupply",
    "QlaConfig",
    "ReadySpec",
    "SimulationResult",
    "SteadyKindSpec",
    "SteadyRateSupply",
    "architecture_for_area",
    "area_breakdown",
    "area_sweep",
    "declared_ready_spec",
    "simulate_batch",
    "throughput_sweep",
]
