"""Qalypso: the paper's proposed tiled microarchitecture (Section 5.3).

A Qalypso tile (Figure 16b) is a dense data-only region surrounded by
pipelined ancilla factories whose output ports sit against the data
region. Data moves ballistically within a tile; teleportation is needed
only between tiles. The two structural wins over (C)QLA:

* data regions contain data alone, so operands are close enough for
  ballistic movement instead of teleportation (which would double ancilla
  consumption per QEC-via-teleport, Section 5.3);
* factories are shared by the whole region through concentrated output
  ports, so ancilla supply multiplexes to wherever demand is — no idle
  dedicated generators.

This module sizes tiles, prices intra-tile distribution, and packages the
"same speed with greatly reduced resources / much greater speed at equal
area" comparison against CQLA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
)
from repro.arch.simulator import DataflowSimulator, SimulationResult
from repro.arch.sweep import _simulate_architecture
from repro.circuits.compiled import compile_circuit
from repro.factory.pipelined import PipelinedZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.kernels.analysis import KernelAnalysis
from repro.layout.region import data_qubit_area
from repro.tech import ION_TRAP, TechnologyParams


@dataclass(frozen=True)
class QalypsoTile:
    """One tile: a data region plus its surrounding factories.

    Attributes:
        data_qubits: Encoded data qubits packed in the region.
        zero_factories: Pipelined zero factories around the region.
        pi8_factories: pi/8 conversion factories around the region.
        tech: Technology parameters.
    """

    data_qubits: int
    zero_factories: int
    pi8_factories: int
    tech: TechnologyParams = ION_TRAP

    def __post_init__(self) -> None:
        if self.data_qubits < 1:
            raise ValueError("data_qubits must be >= 1")
        if self.zero_factories < 0 or self.pi8_factories < 0:
            raise ValueError("factory counts must be >= 0")

    @property
    def data_area(self) -> int:
        return data_qubit_area(self.data_qubits)

    @property
    def factory_area(self) -> int:
        zero = PipelinedZeroFactory(self.tech)
        pi8 = Pi8Factory(self.tech)
        return self.zero_factories * zero.area + self.pi8_factories * pi8.area

    @property
    def total_area(self) -> int:
        return self.data_area + self.factory_area

    @property
    def zero_bandwidth_per_ms(self) -> float:
        """Zero bandwidth available to data, net of pi/8 supply draw."""
        zero = PipelinedZeroFactory(self.tech)
        gross = self.zero_factories * zero.throughput_per_ms
        return max(0.0, gross - self.pi8_bandwidth_per_ms)

    @property
    def pi8_bandwidth_per_ms(self) -> float:
        pi8 = Pi8Factory(self.tech)
        return self.pi8_factories * pi8.throughput_per_ms

    @property
    def region_span_blocks(self) -> int:
        """Side length of the square-packed data region in macroblocks."""
        return max(1, math.ceil(math.sqrt(self.data_area)))

    def distribution_latency_us(self) -> float:
        """Typical factory-port-to-consumer trip inside the tile.

        Output ports sit against the data region (Figure 16b), so a
        delivered ancilla crosses on average half the region span with
        one turn.
        """
        return (self.region_span_blocks / 2.0) * self.tech.t_move + self.tech.t_turn


def tile_for_kernel(analysis: KernelAnalysis) -> QalypsoTile:
    """Provision one tile to run a kernel at the speed of data."""
    zero = PipelinedZeroFactory(analysis.tech)
    pi8 = Pi8Factory(analysis.tech)
    pi8_count = math.ceil(analysis.pi8_bandwidth_per_ms / pi8.throughput_per_ms)
    pi8_zero_draw = pi8_count * pi8.throughput_per_ms
    zero_count = math.ceil(
        (analysis.zero_bandwidth_per_ms + pi8_zero_draw) / zero.throughput_per_ms
    )
    return QalypsoTile(
        data_qubits=analysis.data_qubits,
        zero_factories=zero_count,
        pi8_factories=pi8_count,
        tech=analysis.tech,
    )


@dataclass(frozen=True)
class QalypsoComparison:
    """Qalypso vs CQLA at matched factory area (the >5x speedup claim)."""

    kernel: str
    factory_area: float
    qalypso: SimulationResult
    cqla: SimulationResult

    @property
    def speedup(self) -> float:
        return self.cqla.makespan_us / self.qalypso.makespan_us


def compare_with_cqla(
    analysis: KernelAnalysis,
    factory_area: float = 0.0,
    cqla: CqlaConfig = CqlaConfig(),
) -> QalypsoComparison:
    """Run Qalypso (fully-multiplexed tile) and CQLA at equal area.

    Args:
        analysis: Characterized kernel.
        factory_area: Shared factory-area budget; defaults to the tile
            provisioned for the kernel's matched demand.
        cqla: CQLA configuration.
    """
    tile = tile_for_kernel(analysis)
    if factory_area <= 0.0:
        factory_area = float(tile.factory_area)
    compiled = compile_circuit(analysis.circuit, analysis.tech)
    multiplexed = MultiplexedConfig(region_span=tile.region_span_blocks)
    supply = multiplexed.build_supply(
        factory_area,
        analysis.circuit.num_qubits,
        analysis.zero_bandwidth_per_ms,
        analysis.pi8_bandwidth_per_ms,
        analysis.tech,
    )
    qalypso_result = DataflowSimulator(
        analysis.circuit,
        analysis.tech,
        supply=supply,
        movement_penalty_us=0.0,
        two_qubit_movement_penalty_us=tile.distribution_latency_us(),
        compiled=compiled,
    ).run()
    cqla_result = _simulate_architecture(
        analysis, ArchitectureKind.CQLA, factory_area, cqla,
        compiled=compiled,
    )
    return QalypsoComparison(
        kernel=analysis.name,
        factory_area=factory_area,
        qalypso=qalypso_result,
        cqla=cqla_result,
    )


def teleport_qec_ancilla_overhead() -> Dict[str, int]:
    """Section 5.3's aside: QEC folded into teleportation needs twice the
    encoded ancillae of a straightforward QEC step."""
    return {"qec_step": 2, "qec_via_teleport": 4}
