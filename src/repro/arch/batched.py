"""Point-batched dataflow simulation: a whole sweep in one numpy pass.

Every headline sweep (Figure 8 throughput curves, Figure 15/16 area
ladders, each ``repro.explore`` round) simulates the same compiled kernel
at many design points differing only in supply rates and movement
penalties. The serial engines in :mod:`repro.arch.simulator` re-walk the
full gate list once per point, so sweep cost is ``points x gates``
interpreted Python. This module carries a leading ``points`` axis
instead: simulator state becomes ``(points, num_qubits)`` /
``(points, num_bits)`` float64 matrices, and the engine walks the
circuit's *dependency levels* (from
:func:`repro.circuits.compiled.dataflow_metadata`) exactly once total —
each level's ready/finish update is a handful of vectorized numpy ops
across all points and all gates of the level at once.

What batches, and why it stays bit-identical:

* **Any supply with a declarative ready spec**
  (:func:`~repro.arch.supply.declared_ready_spec`): each kind's closed
  form lowers to one broadcast division. Steady-rate kinds
  (:class:`~repro.arch.supply.SteadyRateSupply` and its
  :class:`~repro.arch.supply.PooledSupply` alias, or any custom spec
  publisher) stack a ``(points,)`` rate vector into a
  ``(points, gates)`` ready matrix (:func:`steady_ready_matrix`) — the
  same division :func:`~repro.arch.simulator._steady_ready_times`
  performs per point. Dedicated per-qubit kinds (the QLA model):
  consumption order per home qubit is fixed by the gate sequence alone,
  so per-gate counter values are precomputed home-qubit ranks and
  availability is again one broadcast division
  (:func:`dedicated_ready_matrix`). Supplies whose specs constrain
  nothing (:class:`~repro.arch.supply.InfiniteSupply`, untracked kinds)
  share one column of work.
* **CQLA cache mode**: the LRU miss/eviction pattern depends only on the
  operand sequence and cache size — never on time — so the per-gate
  teleport-trip schedule is precomputed once per (circuit, cache size).
  Port booking couples gates *within* a point (never across points), so
  a program-order walk over a ``(points, ports)`` earliest-free matrix
  replays every point's min-heap ``_PortBank`` exactly, vectorized
  across the sweep (:func:`_run_cqla_lockstep`).

Within a dependency level no two gates share a qubit (a shared qubit is a
dependency edge) and no gate reads a classical bit written in its own
level, so gathering all start times before scattering all finish times
reproduces the serial engine's program-order walk exactly. Every
floating-point operation keeps the serial evaluation order (max chains,
port-booking max/add, then movement add, then supply max, then
``+ latency`` then ``+ qec``), which makes the batched results
**bit-identical** to :meth:`DataflowSimulator.run` /
:meth:`~DataflowSimulator.run_legacy` — the equivalence suite asserts
exact float equality, not approximation.

What falls back: only supplies with no honored ready spec — custom
:class:`AncillaSupply` implementations without ``ready_spec()``,
subclasses that override availability/state methods without re-declaring
their spec, and instance-level monkeypatches (see
:func:`~repro.arch.supply.declared_ready_spec`). Setting
``REPRO_FORCE_PER_POINT=1`` forces every point down the per-point path —
a debugging escape hatch, reported via the ``forced`` span attribute.
:func:`simulate_batch` routes fallback points through a per-point
:class:`DataflowSimulator` transparently — callers never need to
pre-sort their supplies — and reports the per-path point counts
(``unconstrained`` / ``steady`` / ``dedicated`` / ``fallback``) on its
``batched.simulate_batch`` span.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.architectures import CqlaConfig, teleport_latency
from repro.arch.simulator import (
    ZEROS_PER_QEC,
    DataflowSimulator,
    SimulationResult,
    _LruCache,
    movement_teleports,
    spec_kind_mode,
)
from repro.arch.supply import (
    PI8,
    ZERO,
    AncillaSupply,
    DedicatedKindSpec,
    ReadySpec,
    SteadyKindSpec,
    declared_ready_spec,
)
from repro.circuits import Circuit
from repro.circuits.compiled import (
    CompiledCircuit,
    MOVE_NONE,
    MOVE_ONE_QUBIT,
    MOVE_TWO_QUBIT,
    dataflow_metadata,
)
from repro.circuits.latency import LogicalLatencyModel
from repro.obs.trace import span as _span
from repro.tech import ION_TRAP, TechnologyParams

__all__ = [
    "simulate_batch",
    "steady_ready_matrix",
    "dedicated_ready_matrix",
]


# ----------------------------------------------------------------------
# Per-circuit batch arrays (memoized)


@dataclass(frozen=True, eq=False)
class _Level:
    """One dependency level's operand arrays, pre-gathered.

    State matrices are *gate-major* — ``(num_qubits + 1, points)`` — so
    each per-level gather/scatter touches contiguous rows. ``q1``/``q2``
    map absent operands to the dummy qubit row ``num_qubits`` and
    ``cond``/``result`` map absent bits to the dummy bit row
    ``num_bits``; the dummy rows are re-pinned to 0.0 after a level's
    scatters, so a max against them is a no-op and a scatter into them
    is discarded — no per-level boolean masking needed. The ``has_*``
    flags let the kernel skip whole operand classes (second/third
    operands, condition reads, result writes) when a level has none.
    """

    gates: np.ndarray  # gate indices, program order within the level
    q0: np.ndarray
    q1: np.ndarray
    q2: np.ndarray
    cond: np.ndarray
    result: np.ndarray
    latency: np.ndarray  # (k, 1): broadcasts over the points axis
    has_q1: bool
    has_q2: bool
    has_cond: bool
    has_result: bool


@dataclass(frozen=True, eq=False)
class _BatchArrays:
    """Everything the batched kernel needs, built once per compiled form."""

    levels: Tuple[_Level, ...]
    move_kind: np.ndarray  # (gates,) int8: MOVE_* class per gate
    #: Steady-supply cumulative draws: the i-th gate's zeros are the
    #: ``zero_seq[i]``-th ... drawn from the global pool (program order).
    zero_seq: np.ndarray  # (gates,) float64: ZEROS_PER_QEC * (1..n)
    pi8_seq: np.ndarray  # (pi8_count,) float64: 1..pi8_count
    #: Dedicated-supply cumulative draws per home qubit: gate i's zeros
    #: bring its home generator's counter to ``home_zero_rank[i]``.
    home: np.ndarray  # (gates,) intp: q0 — where ancillae are acquired
    pi8_home: np.ndarray  # (pi8_count,) intp: home of each pi/8 consumer
    home_zero_rank: np.ndarray  # (gates,) float64
    home_pi8_rank: np.ndarray  # (pi8_count,) float64
    #: Total per-qubit consumption, for advancing dedicated counters
    #: (plain int lists: consumed by DedicatedSupply.advance_per_qubit).
    zero_home_totals: List[int]
    pi8_home_totals: List[int]


def _build_batch_arrays(cc: CompiledCircuit) -> _BatchArrays:
    n = cc.num_gates
    nq, nb = cc.num_qubits, cc.num_bits
    q0 = np.array(cc.q0, dtype=np.intp)
    q1 = np.array(cc.q1, dtype=np.intp)
    q2 = np.array(cc.q2, dtype=np.intp)
    cond = np.array(cc.cond_id, dtype=np.intp)
    result = np.array(cc.result_id, dtype=np.intp)
    latency = np.array(cc.latency_us, dtype=np.float64)
    # -1 sentinels -> dummy columns.
    q1 = np.where(q1 < 0, nq, q1)
    q2 = np.where(q2 < 0, nq, q2)
    cond = np.where(cond < 0, nb, cond)
    result = np.where(result < 0, nb, result)
    df = dataflow_metadata(cc)
    levels = []
    for lv in range(df.num_levels):
        g = df.level_order[df.level_offsets[lv] : df.level_offsets[lv + 1]]
        levels.append(
            _Level(
                gates=g,
                q0=q0[g],
                q1=q1[g],
                q2=q2[g],
                cond=cond[g],
                result=result[g],
                latency=latency[g][:, None],
                has_q1=bool((q1[g] != nq).any()),
                has_q2=bool((q2[g] != nq).any()),
                has_cond=bool((cond[g] != nb).any()),
                has_result=bool((result[g] != nb).any()),
            )
        )
    zero_count = [0] * nq
    pi8_count = [0] * nq
    home_zero_rank = np.empty(n, dtype=np.float64)
    home_pi8_rank = []
    pi8_home = []
    for i, a in enumerate(cc.q0):
        zero_count[a] += ZEROS_PER_QEC
        home_zero_rank[i] = zero_count[a]
        if cc.pi8_flag[i]:
            pi8_count[a] += 1
            pi8_home.append(a)
            home_pi8_rank.append(pi8_count[a])
    return _BatchArrays(
        levels=tuple(levels),
        move_kind=np.array(cc.move_kind, dtype=np.int8),
        zero_seq=ZEROS_PER_QEC * np.arange(1, n + 1, dtype=np.float64),
        pi8_seq=np.arange(1, cc.pi8_count + 1, dtype=np.float64),
        home=q0,
        pi8_home=np.array(pi8_home, dtype=np.intp),
        home_zero_rank=home_zero_rank,
        home_pi8_rank=np.array(home_pi8_rank, dtype=np.float64),
        zero_home_totals=zero_count,
        pi8_home_totals=pi8_count,
    )


_BATCH_CACHE: "weakref.WeakKeyDictionary[CompiledCircuit, _BatchArrays]" = (
    weakref.WeakKeyDictionary()
)


def _batch_arrays(cc: CompiledCircuit) -> _BatchArrays:
    arrays = _BATCH_CACHE.get(cc)
    if arrays is None:
        arrays = _build_batch_arrays(cc)
        _BATCH_CACHE[cc] = arrays
    return arrays


# ----------------------------------------------------------------------
# Ready matrices: supply availability as (points, gates) lower bounds.


def _steady_kind_rows(rates, consumed, seq):
    """``(len(seq), points)`` ready rows for one pooled steady kind.

    consumed == 0 for fresh supplies (every sweep point): the add
    contributes nothing bit-exactly (0 + x == x), so skip it.
    """
    if consumed.any():
        needed = seq[:, None] + consumed[None, :]
    else:
        needed = seq[:, None]
    with np.errstate(divide="ignore"):
        return needed / rates[None, :]


def _dedicated_kind_rows(rates, consumed, home, rank):
    """``(len(rank), points)`` ready rows for one per-qubit kind.

    ``rates``/``consumed`` are ``(points, num_qubits)``; transposed to
    (qubits, points) contiguous so home-row gathers are cheap. A
    consumed matrix of zeros (fresh supplies) skips the add, which is
    bit-exactly a no-op.
    """
    rates_t = np.ascontiguousarray(rates.T)
    if consumed.any():
        needed = np.ascontiguousarray(consumed.T)[home]
        needed += rank[:, None]
    else:
        needed = rank[:, None]
    with np.errstate(divide="ignore"):
        return needed / rates_t[home]


def steady_ready_matrix(
    cc: CompiledCircuit,
    zero_rates: Optional[np.ndarray],
    zero_consumed: Optional[np.ndarray],
    pi8_rates: Optional[np.ndarray],
    pi8_consumed: Optional[np.ndarray],
    *,
    gate_major: bool = False,
) -> Optional[np.ndarray]:
    """``(points, gates)`` ancilla-ready lower bounds for steady supplies.

    The point-axis generalization of
    :func:`repro.arch.simulator._steady_ready_times`: the k-th ancilla of
    a kind exists at ``k / rate``, evaluated here as one broadcast
    division per kind. A kind whose rate vector is None is untracked for
    the whole batch (it never constrains); a zero rate divides to
    infinity, matching ``_RateCounter.acquire``'s starvation behavior.

    ``gate_major=True`` returns the transposed ``(gates, points)``
    layout the level kernel gathers from (contiguous per-level rows);
    the default is a transposed view of the same storage — element
    values are identical either way.
    """
    ba = _batch_arrays(cc)
    points = len(zero_rates if zero_rates is not None else pi8_rates)
    with _span("batched.ready_matrix", kind="steady", points=points,
               gates=cc.num_gates):
        ready = None
        if zero_rates is not None:
            ready = _steady_kind_rows(zero_rates, zero_consumed, ba.zero_seq)
        if pi8_rates is not None and cc.pi8_count:
            pi8_ready = _steady_kind_rows(pi8_rates, pi8_consumed, ba.pi8_seq)
            if ready is None:
                ready = np.zeros((cc.num_gates, points))
            index = cc.pi8_indices
            ready[index] = np.maximum(ready[index], pi8_ready)
    if ready is None:
        return None
    return ready if gate_major else ready.T


def dedicated_ready_matrix(
    cc: CompiledCircuit,
    zero_rates: Optional[np.ndarray],
    zero_consumed: Optional[np.ndarray],
    pi8_rates: Optional[np.ndarray],
    pi8_consumed: Optional[np.ndarray],
    *,
    gate_major: bool = False,
) -> Optional[np.ndarray]:
    """``(points, gates)`` ready lower bounds for per-qubit generators.

    Rate/consumed inputs are ``(points, num_qubits)`` matrices (from
    :meth:`DedicatedSupply.dedicated_state`). Consumption per generator
    is fixed by the gate sequence alone — gate ``i`` brings its home
    qubit's counter to a precomputed rank — so availability is again one
    broadcast division per kind, with zero-rate generators dividing to
    infinity exactly like the inlined counters in ``_run_dedicated``.
    ``gate_major=True`` returns the ``(gates, points)`` layout; the
    default is a transposed view of the same storage.
    """
    ba = _batch_arrays(cc)
    points = len(zero_rates if zero_rates is not None else pi8_rates)
    with _span("batched.ready_matrix", kind="dedicated", points=points,
               gates=cc.num_gates):
        ready = None
        if zero_rates is not None:
            ready = _dedicated_kind_rows(
                zero_rates, zero_consumed, ba.home, ba.home_zero_rank
            )
        if pi8_rates is not None and cc.pi8_count:
            pi8_ready = _dedicated_kind_rows(
                pi8_rates, pi8_consumed, ba.pi8_home, ba.home_pi8_rank
            )
            if ready is None:
                ready = np.zeros((cc.num_gates, points))
            index = cc.pi8_indices
            ready[index] = np.maximum(ready[index], pi8_ready)
    if ready is None:
        return None
    return ready if gate_major else ready.T


def _spec_ready_matrix(
    cc: CompiledCircuit,
    signature: Tuple[Optional[str], Optional[str]],
    specs: Sequence[ReadySpec],
) -> Optional[np.ndarray]:
    """Gate-major ready matrix for one lowering-signature group.

    ``signature`` is the group's ``(zero_mode, pi8_mode)`` pair from
    :func:`repro.arch.simulator.spec_kind_mode` — every spec in the
    group lowers each kind the same way, so each kind is one stacked
    broadcast division; kinds may mix modes freely (e.g. a steady zero
    pool over dedicated pi/8 generators) because the per-gate constraint
    is just the elementwise max of the kinds' rows, exactly the order
    the serial loops apply them in.
    """
    ba = _batch_arrays(cc)
    zero_mode, pi8_mode = signature
    points = len(specs)

    def stack(kind, mode, seq, home, rank):
        kind_specs = [spec.kinds[kind] for spec in specs]
        if mode == "steady":
            return _steady_kind_rows(
                np.array([k.rate_per_us for k in kind_specs]),
                np.array([float(k.consumed) for k in kind_specs]),
                seq,
            )
        return _dedicated_kind_rows(
            np.array([k.rates_per_us for k in kind_specs], dtype=np.float64),
            np.array([k.consumed for k in kind_specs], dtype=np.float64),
            home,
            rank,
        )

    with _span("batched.ready_matrix", kind=f"{zero_mode}/{pi8_mode}",
               points=points, gates=cc.num_gates):
        ready = None
        if zero_mode is not None:
            ready = stack(ZERO, zero_mode, ba.zero_seq, ba.home,
                          ba.home_zero_rank)
        if pi8_mode is not None and cc.pi8_count:
            pi8_ready = stack(PI8, pi8_mode, ba.pi8_seq, ba.pi8_home,
                              ba.home_pi8_rank)
            if ready is None:
                ready = np.zeros((cc.num_gates, points))
            index = cc.pi8_indices
            ready[index] = np.maximum(ready[index], pi8_ready)
    return ready


# ----------------------------------------------------------------------
# The batched kernel


def _run_levels(
    cc: CompiledCircuit,
    points: int,
    movement: Optional[np.ndarray],
    ready: Optional[np.ndarray],
    qec: float,
) -> np.ndarray:
    """Execute all ``points`` columns in one sweep over dependency levels.

    State is gate-major — ``(num_qubits + 1, points)`` — so per-level
    gathers and scatters touch contiguous rows; ``ready`` (when given)
    is likewise ``(gates, points)``. Per-point arithmetic replays the
    serial hot loops' exact operation order — operand/bit max chain,
    movement add, supply max, then ``+ latency`` followed by ``+ qec``
    as two separate additions (fusing them would change rounding) — so
    every column is bit-identical to a serial run of that point.
    """
    nq, nb = cc.num_qubits, cc.num_bits
    ba = _batch_arrays(cc)
    with _span("batched.level_sweep", points=points, levels=len(ba.levels),
               gates=cc.num_gates):
        return _run_levels_body(ba, nq, nb, points, movement, ready, qec)


def _run_levels_body(ba, nq, nb, points, movement, ready, qec):
    qubit_free = np.zeros((nq + 1, points))
    bits = np.zeros((nb + 1, points))
    for level in ba.levels:
        t = qubit_free[level.q0]  # fancy gather: a fresh copy
        if level.has_q1:
            np.maximum(t, qubit_free[level.q1], out=t)
            if level.has_q2:
                np.maximum(t, qubit_free[level.q2], out=t)
        if level.has_cond:
            np.maximum(t, bits[level.cond], out=t)
        if movement is not None:
            t += movement[level.gates][:, None]
        if ready is not None:
            np.maximum(t, ready[level.gates], out=t)
        t += level.latency
        t += qec
        # Scatters cannot collide: same-level gates touch disjoint qubits
        # (a shared qubit is a dependency edge), and duplicate result-bit
        # writers resolve last-in-program-order, like the serial loop.
        qubit_free[level.q0] = t
        if level.has_q1:
            qubit_free[level.q1] = t
            if level.has_q2:
                qubit_free[level.q2] = t
            # Re-pin the dummy row the sentinel scatters just dirtied.
            qubit_free[nq] = 0.0
        if level.has_result:
            bits[level.result] = t
            bits[nb] = 0.0
    if nq == 0:
        return np.zeros(points)
    return qubit_free[:nq].max(axis=0)


# ----------------------------------------------------------------------
# CQLA: precomputed cache schedule + program-order lockstep kernel


@dataclass(frozen=True, eq=False)
class _CacheSchedule:
    """Per-gate teleport-trip counts implied by LRU residency.

    Which operands miss (and whether each miss evicts a resident qubit)
    depends only on the operand sequence and the cache capacity — never
    on gate timing — so the whole port-booking workload is a pure
    function of (circuit, cache size), computed once and shared by every
    point of every sweep.
    """

    trips: List[int]  # bookings gate i performs (0 for full hits)
    misses: int
    teleports: int  # total bookings == sum(trips)


_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[CompiledCircuit, Dict[int, _CacheSchedule]]" = (
    weakref.WeakKeyDictionary()
)


def _cache_schedule(cc: CompiledCircuit, cache_size: int) -> _CacheSchedule:
    """Replay the LRU walk ``_run_cache`` performs, timing-free."""
    per_cc = _SCHEDULE_CACHE.get(cc)
    if per_cc is None:
        per_cc = {}
        _SCHEDULE_CACHE[cc] = per_cc
    schedule = per_cc.get(cache_size)
    if schedule is not None:
        return schedule
    cache = _LruCache(cache_size)
    trips = [0] * cc.num_gates
    misses = 0
    total = 0
    for i, (a, b, c) in enumerate(zip(cc.q0, cc.q1, cc.q2)):
        q = a
        while q >= 0:
            if q in cache:
                cache.touch(q)
            else:
                misses += 1
                k = 1 + (1 if cache.touch(q) is not None else 0)
                trips[i] += k
                total += k
            q = b if q == a else (c if q == b else -1)
    schedule = _CacheSchedule(trips=trips, misses=misses, teleports=total)
    per_cc[cache_size] = schedule
    return schedule


def _run_cqla_lockstep(
    cc: CompiledCircuit,
    points: int,
    movement: Optional[np.ndarray],
    ready: Optional[np.ndarray],
    qec: float,
    schedule: _CacheSchedule,
    ports: int,
    t_teleport: float,
) -> np.ndarray:
    """Execute ``points`` CQLA columns in one program-order walk.

    Port booking makes start times order-sensitive *within* a point (a
    booked gate delays later bookers), but points never interact — so
    the serial min-heap ``_PortBank`` vectorizes into a
    ``(points, ports)`` earliest-free matrix walked in program order:
    per trip, each point books its earliest-free port (``argmin`` takes
    the first minimum, matching the heap's ``(free, index)`` tie-break).
    Level-order walking would be wrong here: bookings are not
    commutative, and program order is the order both serial engines
    book in. All other per-gate arithmetic replays the serial
    ``_run_cache`` loop's exact operation order, so every column is
    bit-identical to a serial run of that point.
    """
    nq, nb = cc.num_qubits, cc.num_bits
    qubit_free = np.zeros((nq, points))
    bits = np.zeros((nb, points))
    port_free = np.zeros((points, ports))
    rows = np.arange(points)
    q0, q1, q2 = cc.q0, cc.q1, cc.q2
    cond_id, result_id = cc.cond_id, cc.result_id
    latency = cc.latency_us
    trips = schedule.trips
    move = movement.tolist() if movement is not None else None
    maximum = np.maximum
    with _span("batched.cqla_lockstep", points=points, gates=cc.num_gates,
               ports=ports):
        for i in range(cc.num_gates):
            a = q0[i]
            b = q1[i]
            c = q2[i]
            t = qubit_free[a].copy()
            if b >= 0:
                maximum(t, qubit_free[b], out=t)
                if c >= 0:
                    maximum(t, qubit_free[c], out=t)
            cond = cond_id[i]
            if cond >= 0:
                maximum(t, bits[cond], out=t)
            k = trips[i]
            while k:
                k -= 1
                idx = port_free.argmin(axis=1)
                maximum(t, port_free[rows, idx], out=t)
                t += t_teleport
                port_free[rows, idx] = t
            if move is not None:
                m = move[i]
                if m:
                    t += m
            if ready is not None:
                maximum(t, ready[i], out=t)
            t += latency[i]
            t += qec
            qubit_free[a] = t
            if b >= 0:
                qubit_free[b] = t
                if c >= 0:
                    qubit_free[c] = t
            r = result_id[i]
            if r >= 0:
                bits[r] = t
    if nq == 0:
        return np.zeros(points)
    return qubit_free.max(axis=0)


# ----------------------------------------------------------------------
# Supply classification and the public batch entry point


def _lowering_signature(cc: CompiledCircuit, spec: ReadySpec):
    """``(zero_mode, pi8_mode)`` grouping key for one point's spec.

    Modes are :func:`spec_kind_mode` strings; a kind irrelevant to this
    circuit (untracked, or pi/8 with no pi/8 gates) is None. Points with
    equal signatures lower each kind the same way and share one ready
    matrix; ``(None, None)`` points are unconstrained.
    """
    zero_mode = spec_kind_mode(spec.kind(ZERO))
    pi8_mode = spec_kind_mode(spec.kind(PI8)) if cc.pi8_count else None
    return zero_mode, pi8_mode


def simulate_batch(
    circuit: Circuit,
    supplies: Sequence[AncillaSupply],
    tech: TechnologyParams = ION_TRAP,
    *,
    movement_penalty_us: float = 0.0,
    two_qubit_movement_penalty_us: Optional[float] = None,
    cqla: Optional[CqlaConfig] = None,
    compiled: Optional[CompiledCircuit] = None,
) -> List[SimulationResult]:
    """Simulate one design point per entry of ``supplies``, batched.

    Every point shares the circuit, technology, movement penalties and
    (optional) CQLA configuration; points differ only in their ancilla
    supply — exactly the shape of a Figure 8 / Figure 15 / Figure 16
    sweep axis. Results are **bit-identical** to running
    ``DataflowSimulator(...).run()`` per point, including the observable
    supply state afterwards (steady and dedicated counters advance by
    the same amounts).

    Any supply with an honored declarative ready spec
    (:func:`~repro.arch.supply.declared_ready_spec` — the built-in
    models and any custom publisher) executes through the vectorized
    kernels, including under ``cqla``; only spec-less or
    override-disqualified supplies fall back to a per-point serial
    simulator, transparently. ``REPRO_FORCE_PER_POINT=1`` forces the
    per-point path for debugging.
    """
    with _span("batched.simulate_batch", points=len(supplies)) as sp:
        return _simulate_batch(
            circuit, supplies, tech, movement_penalty_us,
            two_qubit_movement_penalty_us, cqla, compiled, sp,
        )


def _simulate_batch(
    circuit: Circuit,
    supplies: Sequence[AncillaSupply],
    tech: TechnologyParams,
    movement_penalty_us: float,
    two_qubit_movement_penalty_us: Optional[float],
    cqla: Optional[CqlaConfig],
    compiled: Optional[CompiledCircuit],
    sp,
) -> List[SimulationResult]:

    def fallback(supply: AncillaSupply) -> SimulationResult:
        return DataflowSimulator(
            circuit,
            tech,
            supply=supply,
            movement_penalty_us=movement_penalty_us,
            two_qubit_movement_penalty_us=two_qubit_movement_penalty_us,
            cqla=cqla,
            compiled=compiled,
        ).run()

    if not supplies:
        return []
    probe = DataflowSimulator(
        circuit,
        tech,
        movement_penalty_us=movement_penalty_us,
        two_qubit_movement_penalty_us=two_qubit_movement_penalty_us,
        compiled=compiled,
    )
    cc = probe.compiled
    n = cc.num_gates
    if n == 0:
        return [SimulationResult(0.0, 0, 0, 0, 0, 0) for _ in supplies]
    qec = LogicalLatencyModel(tech).qec_interaction_latency()
    move_1q = movement_penalty_us
    move_2q = (
        two_qubit_movement_penalty_us
        if two_qubit_movement_penalty_us is not None
        else movement_penalty_us
    )
    teleports = movement_teleports(cc, move_1q, move_2q, tech)
    movement = None
    if move_1q or move_2q:
        table = np.zeros(3)
        table[MOVE_NONE] = 0.0
        table[MOVE_ONE_QUBIT] = move_1q
        table[MOVE_TWO_QUBIT] = move_2q
        movement = table[_batch_arrays(cc).move_kind]

    schedule: Optional[_CacheSchedule] = None
    t_teleport = 0.0
    if cqla is not None:
        schedule = _cache_schedule(cc, cqla.cache_size(cc.num_qubits))
        t_teleport = teleport_latency(tech)

    def result(makespan: float) -> SimulationResult:
        if schedule is None:
            misses = 0
            total_teleports = teleports
        else:
            misses = schedule.misses
            total_teleports = teleports + schedule.teleports
        return SimulationResult(
            makespan_us=float(makespan),
            gates=n,
            zero_ancillae_consumed=ZEROS_PER_QEC * n,
            pi8_ancillae_consumed=cc.pi8_count,
            cache_misses=misses,
            teleports=total_teleports,
        )

    forced = os.environ.get("REPRO_FORCE_PER_POINT", "") == "1"
    out: List[Optional[SimulationResult]] = [None] * len(supplies)
    # Group lowerable points by lowering signature so each group shares
    # one ready matrix (mixed tracked/untracked kinds cannot).
    unconstrained: List[int] = []
    groups: Dict[tuple, List[int]] = {}
    specs: List[Optional[ReadySpec]] = [None] * len(supplies)
    for i, supply in enumerate(supplies):
        spec = None if forced else declared_ready_spec(supply)
        if spec is None:
            out[i] = fallback(supply)
            continue
        signature = _lowering_signature(cc, spec)
        if "unknown" in signature:
            # A spec type this engine cannot lower — treat like any
            # custom supply.
            out[i] = fallback(supply)
            continue
        specs[i] = spec
        if signature == (None, None):
            unconstrained.append(i)
        else:
            groups.setdefault(signature, []).append(i)
    # Per-group point counts on the batch span: how much of the sweep
    # took the vectorized path vs the per-point fallback. The paper
    # sweeps (Figures 8/15/16) assert fallback == 0 on this attribute.
    sp.set(
        unconstrained=len(unconstrained),
        steady=sum(
            len(v) for sig, v in groups.items() if "dedicated" not in sig
        ),
        dedicated=sum(
            len(v) for sig, v in groups.items() if "dedicated" in sig
        ),
        fallback=sum(1 for r in out if r is not None),
        forced=forced,
    )

    # An aliased supply object at several constrained points cannot be
    # batched faithfully: serial per-point runs would thread its consumed
    # state from one point into the next, while a batch snapshots the
    # state once. Fail loud rather than silently diverge. (Stateless /
    # unconstrained duplicates are harmless; per-point fallbacks replay
    # state sequentially in index order, like a serial loop.)
    seen_ids: Dict[int, int] = {}
    for indices in groups.values():
        for i in indices:
            j = seen_ids.setdefault(id(supplies[i]), i)
            if j != i:
                raise ValueError(
                    f"supplies[{j}] and supplies[{i}] are the same "
                    "object; rate-limited supplies must be distinct "
                    "per point (consumption state cannot be shared "
                    "within one batch)"
                )

    ba = _batch_arrays(cc)

    def advance(index: int) -> None:
        # Commit exactly what a per-gate acquire walk would have
        # recorded, per the point's declared spec: aggregate counts for
        # steady kinds, per-home totals for dedicated kinds. (advance /
        # advance_per_qubit skip zero-rate counters internally, matching
        # acquire's return-inf-without-recording behavior.)
        supply = supplies[index]
        spec = specs[index]
        zero_spec = spec.kind(ZERO)
        if isinstance(zero_spec, SteadyKindSpec):
            supply.advance(ZERO, ZEROS_PER_QEC * n)
        elif isinstance(zero_spec, DedicatedKindSpec):
            supply.advance_per_qubit(ZERO, ba.zero_home_totals)
        pi8_spec = spec.kind(PI8)
        if isinstance(pi8_spec, SteadyKindSpec):
            supply.advance(PI8, cc.pi8_count)
        elif isinstance(pi8_spec, DedicatedKindSpec):
            supply.advance_per_qubit(PI8, ba.pi8_home_totals)

    def run_group(count: int, ready: Optional[np.ndarray]) -> np.ndarray:
        if schedule is None:
            return _run_levels(cc, count, movement, ready, qec)
        return _run_cqla_lockstep(
            cc, count, movement, ready, qec, schedule, cqla.ports,
            t_teleport,
        )

    if unconstrained:
        # All such points produce identical results: one column suffices.
        makespan = run_group(1, None)[0]
        for i in unconstrained:
            out[i] = result(makespan)
            advance(i)

    for signature, indices in groups.items():
        ready = _spec_ready_matrix(
            cc, signature, [specs[i] for i in indices]
        )
        makespans = run_group(len(indices), ready)
        for i, makespan in zip(indices, makespans):
            out[i] = result(makespan)
            advance(i)

    return out
