"""Chip provisioning: the Table 9 area breakdown.

For a kernel to run at the speed of data, the chip must generate encoded
ancillae at the Table 3 bandwidths. Components:

* data area — 7 macroblocks per encoded data qubit (Figure 10);
* QEC zero factories — pipelined zero factories (298 mb per 10.5/ms)
  sized to the QEC zero bandwidth;
* pi/8 factories — conversion pipelines (403 mb per 18.3/ms) *plus* the
  zero factories supplying them, sized to the pi/8 bandwidth.

Fractional factory replication is allowed, matching the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.factory.pipelined import PipelinedZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.kernels.analysis import KernelAnalysis
from repro.layout.region import data_qubit_area


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-kernel chip area split (one Table 9 row)."""

    kernel: str
    zero_bandwidth_per_ms: float
    pi8_bandwidth_per_ms: float
    data_area: float
    qec_factory_area: float
    pi8_factory_area: float

    @property
    def factory_area(self) -> float:
        """Total encoded-ancilla generation area."""
        return self.qec_factory_area + self.pi8_factory_area

    @property
    def total_area(self) -> float:
        return self.data_area + self.factory_area

    @property
    def data_fraction(self) -> float:
        return self.data_area / self.total_area

    @property
    def qec_factory_fraction(self) -> float:
        return self.qec_factory_area / self.total_area

    @property
    def pi8_factory_fraction(self) -> float:
        return self.pi8_factory_area / self.total_area

    @property
    def ancilla_fraction(self) -> float:
        """Fraction of the chip devoted to ancilla generation — the
        paper's headline: at least two-thirds even for the serial QRCA."""
        return self.factory_area / self.total_area


def factory_area_for_rates(
    zero_per_ms: float, pi8_per_ms: float, tech=None
) -> float:
    """Factory area (macroblocks) sustaining the given steady rates.

    Uses the pipelined-factory exchange rates with fractional replication
    (Table 9's convention): the pi/8 cost includes the zero factories
    feeding the conversion pipeline. This is the inverse of
    :func:`repro.arch.architectures.split_area` — pricing a steady-supply
    operating point so explorations can compare it with architecture
    points on the same area axis.
    """
    from repro.arch.architectures import demand_area_for_rates
    from repro.tech import ION_TRAP

    if zero_per_ms < 0 or pi8_per_ms < 0:
        raise ValueError("rates must be >= 0")
    return demand_area_for_rates(
        zero_per_ms, pi8_per_ms, tech if tech is not None else ION_TRAP
    )


def area_breakdown(analysis: KernelAnalysis) -> AreaBreakdown:
    """Compute the Table 9 row for a characterized kernel.

    Memoized on the analysis object: sweeps and benchmarks recompute the
    matched-demand area for every curve, and the inputs (bandwidths,
    tech, data-qubit count) are fixed once the analysis is built. The
    returned row is frozen, so sharing it is safe.
    """
    cached = getattr(analysis, "_area_breakdown_cache", None)
    if cached is not None:
        return cached
    tech = analysis.tech
    zero_factory = PipelinedZeroFactory(tech)
    pi8_factory = Pi8Factory(tech)
    zero_bw = analysis.zero_bandwidth_per_ms
    pi8_bw = analysis.pi8_bandwidth_per_ms
    qec_area = zero_factory.area_for_bandwidth(zero_bw)
    # pi/8 column: conversion pipelines plus the zero factories feeding
    # them (one encoded zero consumed per pi/8 output).
    pi8_area = pi8_factory.area_for_bandwidth(pi8_bw) + zero_factory.area_for_bandwidth(pi8_bw)
    breakdown = AreaBreakdown(
        kernel=analysis.name,
        zero_bandwidth_per_ms=zero_bw,
        pi8_bandwidth_per_ms=pi8_bw,
        data_area=float(data_qubit_area(analysis.data_qubits)),
        qec_factory_area=qec_area,
        pi8_factory_area=pi8_area,
    )
    analysis._area_breakdown_cache = breakdown
    return breakdown
