"""Event-based dataflow simulation of kernel execution (Section 5.2).

The simulator walks the decomposed kernel's dependency DAG in program
order (which is topological). Each gate starts once

* its data dependencies have finished,
* its operand qubits are free,
* its ancillae are available from the architecture's supply model
  (two corrected zeros for the QEC step; one pi/8 for T-type gates), and
* any architecture movement (teleports, cache-miss fills) has completed;

it then occupies its qubits for gate latency plus the data/QEC interaction.
CQLA cache behavior follows the paper's sim-cache-style approach: an LRU
set of resident qubits, with misses teleporting qubits in through a
limited number of ports and dirty evictions teleporting out.

Two engines execute this model:

* :meth:`DataflowSimulator.run` — the production engine. It consumes the
  struct-of-arrays :class:`~repro.circuits.compiled.CompiledCircuit`
  form, allocates no per-gate objects, and lowers any supply that
  publishes a declarative ready-time description
  (:func:`~repro.arch.supply.declared_ready_spec`) through its closed
  form — steady-rate kinds (the k-th ancilla exists at ``k / rate``)
  evaluate for the whole circuit in one vectorized pass, dedicated
  per-qubit kinds through the inlined counter loop. It is bit-identical
  to the reference loop — the equivalence test suite asserts exact
  equality of every :class:`SimulationResult` field across kernels and
  supplies.
* :meth:`DataflowSimulator.run_legacy` — the original per-gate-object
  reference loop, kept as the executable specification the compiled
  engine is validated against.

A third engine lives in :mod:`repro.arch.batched`: it simulates a whole
*sweep* of design points (one supply per point) in a single vectorized
pass over dependency levels, bit-identical to running either engine here
once per point.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from heapq import heapify, heapreplace
from itertools import repeat
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import span as _span

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    teleport_latency,
)
from repro.arch.supply import (
    PI8,
    ZERO,
    AncillaSupply,
    DedicatedKindSpec,
    InfiniteSupply,
    SteadyKindSpec,
    SteadyRateSupply,
    declared_ready_spec,
)
from repro.circuits import Circuit
from repro.circuits.compiled import CompiledCircuit, compile_circuit
from repro.circuits.gate import PI8_CONSUMING_GATES
from repro.circuits.latency import LogicalLatencyModel
from repro.tech import ION_TRAP, TechnologyParams

#: Encoded zeros per QEC step (bit + phase correction).
ZEROS_PER_QEC = 2

_INF = float("inf")


@dataclass
class SimulationResult:
    """Outcome of one dataflow simulation."""

    makespan_us: float
    gates: int
    zero_ancillae_consumed: int
    pi8_ancillae_consumed: int
    cache_misses: int = 0
    teleports: int = 0

    @property
    def makespan_ms(self) -> float:
        return self.makespan_us / 1000.0


class _LruCache:
    """LRU residency set over qubit ids.

    Backed by an :class:`~collections.OrderedDict` whose iteration order
    is recency order (oldest first), so eviction pops the front in O(1)
    instead of scanning for the minimum timestamp.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._order

    def touch(self, qubit: int) -> Optional[int]:
        """Mark ``qubit`` resident; returns an evicted qubit or None."""
        order = self._order
        if qubit in order:
            order.move_to_end(qubit)
            return None
        evicted = None
        if len(order) >= self.capacity:
            evicted, _ = order.popitem(last=False)
        order[qubit] = None
        return evicted


class _PortBank:
    """Earliest-free teleport port selection via a min-heap.

    Heap entries are ``(free_time, port_index)``; ties resolve to the
    lowest index, matching a first-minimum linear scan over a port list.
    """

    __slots__ = ("_heap",)

    def __init__(self, ports: int) -> None:
        self._heap = [(0.0, i) for i in range(ports)]
        heapify(self._heap)

    def book(self, start: float, duration: float) -> float:
        """Occupy the earliest-free port from ``start``; returns the
        completion time."""
        free, index = self._heap[0]
        begin = start if start > free else free
        end = begin + duration
        heapreplace(self._heap, (end, index))
        return end


def spec_kind_mode(kind_spec) -> Optional[str]:
    """Lowering class of one kind's declarative spec.

    ``None`` (unconstrained), ``"steady"``, ``"dedicated"``, or
    ``"unknown"`` for a foreign spec type neither engine can lower —
    callers must route unknown specs through per-gate ``acquire``.
    """
    if kind_spec is None:
        return None
    if isinstance(kind_spec, SteadyKindSpec):
        return "steady"
    if isinstance(kind_spec, DedicatedKindSpec):
        return "dedicated"
    return "unknown"


def movement_teleports(
    cc: CompiledCircuit, move_1q: float, move_2q: float, tech: TechnologyParams
) -> int:
    """Teleports implied by movement penalties alone (no cache traffic).

    A movement penalty at least as long as a teleport is one (two for
    two-qubit gates, which move both operands) — the accounting rule
    ``run_legacy`` applies per gate, evaluated in closed form here for
    both fast engines.
    """
    t_teleport = teleport_latency(tech)
    teleports = 0
    if move_1q and move_1q >= t_teleport:
        teleports += cc.one_qubit_moves
    if move_2q and move_2q >= t_teleport:
        teleports += 2 * cc.two_qubit_moves
    return teleports


class DataflowSimulator:
    """Simulates kernel execution under an architecture's constraints.

    Args:
        circuit: Decomposed (encoded-gate-set) kernel circuit.
        tech: Technology parameters.
        supply: Ancilla supply model; defaults to infinite (speed of data).
        movement_penalty_us: Per-gate movement latency added before the
            gate (architecture-dependent; 0 for the pure dataflow bound).
        cqla: When given, enables compute-cache modeling with this config.
        compiled: Optional pre-lowered form of ``circuit`` (from
            :func:`~repro.circuits.compiled.compile_circuit`), letting
            sweeps share one compilation across many simulator instances.
            Compiled lazily on first :meth:`run` when omitted.
    """

    def __init__(
        self,
        circuit: Circuit,
        tech: TechnologyParams = ION_TRAP,
        supply: Optional[AncillaSupply] = None,
        movement_penalty_us: float = 0.0,
        two_qubit_movement_penalty_us: Optional[float] = None,
        cqla: Optional[CqlaConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
    ) -> None:
        self.circuit = circuit
        self.tech = tech
        self.supply = supply if supply is not None else InfiniteSupply()
        self.move_1q = movement_penalty_us
        self.move_2q = (
            two_qubit_movement_penalty_us
            if two_qubit_movement_penalty_us is not None
            else movement_penalty_us
        )
        self.cqla = cqla
        self._logical = LogicalLatencyModel(tech)
        if compiled is not None:
            if (
                not compiled.compiled_from(circuit)
                or compiled.num_gates != len(circuit)
                or compiled.num_qubits != circuit.num_qubits
                or compiled.tech != tech
            ):
                raise ValueError(
                    "compiled circuit does not match this simulator's "
                    f"circuit/tech (compiled {compiled.num_gates} gates under "
                    f"{compiled.tech.name!r}, simulating {len(circuit)} gates "
                    f"under {tech.name!r}); pass compiled=None to recompile"
                )
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledCircuit:
        """The circuit's array form, compiled on first access."""
        if self._compiled is None:
            self._compiled = compile_circuit(self.circuit, self.tech)
        return self._compiled

    # ------------------------------------------------------------------
    # Compiled engine

    def run(self) -> SimulationResult:
        """Execute via the compiled array-form engine.

        Result-identical to :meth:`run_legacy` (exact float equality),
        several times faster: no per-gate object allocation, inlined
        dependency updates, and closed-form steady-rate supply queries.
        """
        with _span("simulate.setup"):
            cc = self.compiled
            n = cc.num_gates
            if n == 0:
                return SimulationResult(0.0, 0, 0, 0, 0, 0)
            supply = self.supply
            qec = self._logical.qec_interaction_latency()
            move_1q = self.move_1q
            move_2q = self.move_2q
            teleports = movement_teleports(cc, move_1q, move_2q, self.tech)
            movement = None
            if move_1q or move_2q:
                table = (0.0, move_1q, move_2q)
                movement = [table[k] for k in cc.move_kind]
            spec = declared_ready_spec(supply)
            supply_ready: Optional[List[float]] = None
            zero_spec = pi8_spec = None
            dedicated = False
            generic = None
            if spec is None:
                generic = supply.acquire
            else:
                zero_spec = spec.kind(ZERO)
                pi8_spec = spec.kind(PI8)
                zero_mode = spec_kind_mode(zero_spec)
                pi8_mode = spec_kind_mode(pi8_spec)
                modes = {zero_mode, pi8_mode}
                if "unknown" in modes:
                    # A spec type this engine cannot lower: per-gate
                    # acquire threads state exactly, like any custom
                    # supply.
                    generic = supply.acquire
                    spec = None
                elif "dedicated" in modes and (
                    self.cqla is not None or "steady" in modes
                ):
                    # Per-gate acquire keeps home-qubit counters exact
                    # under cache reordering concerns and mixed
                    # steady/dedicated kinds; state advances in place.
                    generic = supply.acquire
                    spec = None
                elif "dedicated" in modes:
                    dedicated = True
                else:
                    # Steady and/or unconstrained kinds: the whole
                    # circuit's ready times in one closed form. The list
                    # companion of the memoized ready vector: the serial
                    # loops iterate it element by element, and plain
                    # floats are ~2x faster there than np.float64
                    # scalars.
                    supply_ready = _steady_ready_entry(
                        cc, zero_spec, pi8_spec
                    )[1]
        with _span("simulate.level_walk", gates=n):
            if self.cqla is not None:
                makespan, misses, cache_teleports = _run_cache(
                    cc, self.cqla, self.tech, movement, supply_ready, generic,
                    qec
                )
                teleports += cache_teleports
            elif dedicated:
                makespan = _run_dedicated(cc, movement, zero_spec, pi8_spec,
                                          qec)
                misses = 0
            elif generic is not None:
                makespan = _run_generic(cc, movement, generic, qec)
                misses = 0
            else:
                makespan = _run_flat(cc, movement, supply_ready, qec)
                misses = 0
        if spec is not None and not dedicated:
            # Commit the aggregate consumption the lowered run skipped
            # (dedicated lowering mutates the spec's live lists in
            # place, so only steady kinds need an explicit commit).
            advance_zero = isinstance(zero_spec, SteadyKindSpec)
            advance_pi8 = isinstance(pi8_spec, SteadyKindSpec)
            if advance_zero or advance_pi8:
                with _span("simulate.supply_advance"):
                    if advance_zero:
                        supply.advance(ZERO, ZEROS_PER_QEC * n)
                    if advance_pi8:
                        supply.advance(PI8, cc.pi8_count)
        return SimulationResult(
            makespan_us=float(makespan),
            gates=n,
            zero_ancillae_consumed=ZEROS_PER_QEC * n,
            pi8_ancillae_consumed=cc.pi8_count,
            cache_misses=misses,
            teleports=teleports,
        )

    # ------------------------------------------------------------------
    # Reference engine

    def run_legacy(self) -> SimulationResult:
        """Execute via the original per-gate-object reference loop.

        Kept as the executable specification: the compiled engine must
        reproduce this loop's results exactly.
        """
        tech = self.tech
        logical = self._logical
        qec_interact = logical.qec_interaction_latency()
        qubit_free = [0.0] * self.circuit.num_qubits
        bit_ready: Dict[str, float] = {}
        cache = None
        ports: Optional[_PortBank] = None
        misses = 0
        teleports = 0
        if self.cqla is not None:
            cache = _LruCache(self.cqla.cache_size(self.circuit.num_qubits))
            ports = _PortBank(self.cqla.ports)
        t_teleport = teleport_latency(tech)
        zeros = 0
        pi8s = 0
        makespan = 0.0
        for gate in self.circuit:
            qubits = gate.qubits
            start = max(qubit_free[q] for q in qubits)
            if gate.condition is not None:
                start = max(start, bit_ready.get(gate.condition, 0.0))
            # Cache fills: each non-resident operand teleports in through
            # the earliest-free port; dirty evictions teleport out first.
            if cache is not None:
                for q in qubits:
                    if q in cache:
                        cache.touch(q)
                        continue
                    misses += 1
                    evicted = cache.touch(q)
                    trips = 1 + (1 if evicted is not None else 0)
                    for _ in range(trips):
                        teleports += 1
                        start = ports.book(start, t_teleport)
            # Architecture movement for the gate itself.
            movement = self.move_2q if gate.is_two_qubit else self.move_1q
            if movement and not (gate.is_prep or gate.is_measurement):
                if movement >= t_teleport:
                    teleports += 1 if not gate.is_two_qubit else 2
                start += movement
            # Ancilla availability.
            home = qubits[0]
            start = max(start, self.supply.acquire(ZERO, home, ZEROS_PER_QEC, start))
            zeros += ZEROS_PER_QEC
            if gate.gate_type in PI8_CONSUMING_GATES:
                start = max(start, self.supply.acquire(PI8, home, 1, start))
                pi8s += 1
            finish = start + logical.gate_latency(gate) + qec_interact
            for q in qubits:
                qubit_free[q] = finish
            if gate.result is not None:
                bit_ready[gate.result] = finish
            makespan = max(makespan, finish)
        return SimulationResult(
            makespan_us=makespan,
            gates=len(self.circuit),
            zero_ancillae_consumed=zeros,
            pi8_ancillae_consumed=pi8s,
            cache_misses=misses,
            teleports=teleports,
        )


# ----------------------------------------------------------------------
# Compiled-engine loop bodies.
#
# Each is a module-level function over plain locals: per-gate work is a
# handful of list index / compare operations and nothing else. Floating-
# point evaluation order matches run_legacy exactly (same max chains,
# same addition associativity), which is what makes the engines
# bit-identical rather than merely approximately equal.


#: Memoized steady-supply ready vectors: per compiled circuit (weak), a
#: small LRU of rates-fingerprint -> ``(read-only ndarray, list)``.
#: Sweeps construct a fresh supply per design point, so within one sweep
#: each fingerprint is computed once; across repeated evaluations of the
#: same point the whole vector is reused. Bounded so pathological rate
#: churn cannot accumulate unbounded float matrices.
#:
#: Both forms are cached because they serve different consumers: the
#: point-batched engine stacks the ndarrays into ready matrices, while
#: the serial loops here iterate element by element — and iterating an
#: ndarray yields np.float64 scalars whose compare/add boxing is ~2x
#: slower than plain floats (the PR 4/5 single-point throughput
#: regression). ``.tolist()`` preserves every float bit, so both
#: consumers stay bit-identical to the reference loop.
_READY_CACHE: "weakref.WeakKeyDictionary[CompiledCircuit, OrderedDict]" = (
    weakref.WeakKeyDictionary()
)
_READY_CACHE_MAX = 128

_ReadyEntry = Tuple[Optional[np.ndarray], Optional[List[float]]]


def _steady_ready_entry(
    cc: CompiledCircuit,
    zero: Optional[SteadyKindSpec],
    pi8: Optional[SteadyKindSpec],
) -> _ReadyEntry:
    """Memoized ``(ndarray, list)`` ready-vector pair for steady specs.

    Consumption order under the reference loop is program order (two
    zeros per gate, one pi/8 per T-type gate), so the time the i-th
    gate's ancillae exist is a pure function of i — computed here for
    the whole circuit in one vectorized pass from the kinds' declarative
    :class:`SteadyKindSpec` forms. A zero-rate kind yields infinity
    (matching ``_RateCounter.acquire``); an unconstrained kind (None)
    contributes no constraint. Returns ``(None, None)`` when no kind
    constrains this circuit.
    """
    n = cc.num_gates
    fingerprint = (
        zero.rate_per_us if zero is not None else None,
        zero.consumed if zero is not None else 0,
        pi8.rate_per_us if pi8 is not None else None,
        pi8.consumed if pi8 is not None else 0,
    )
    per_cc = _READY_CACHE.get(cc)
    if per_cc is None:
        per_cc = OrderedDict()
        _READY_CACHE[cc] = per_cc
    elif fingerprint in per_cc:
        per_cc.move_to_end(fingerprint)
        return per_cc[fingerprint]
    with _span("simulate.ready_vector", gates=n):
        ready = None
        if zero is not None:
            if zero.rate_per_us == 0.0:
                ready = np.full(n, np.inf)
            else:
                consumed = zero.consumed + (
                    ZEROS_PER_QEC * np.arange(1, n + 1, dtype=np.float64)
                )
                ready = consumed / zero.rate_per_us
        if pi8 is not None and cc.pi8_count:
            if pi8.rate_per_us == 0.0:
                pi8_ready = np.full(cc.pi8_count, np.inf)
            else:
                consumed = pi8.consumed + np.arange(
                    1, cc.pi8_count + 1, dtype=np.float64
                )
                pi8_ready = consumed / pi8.rate_per_us
            if ready is None:
                ready = np.zeros(n)
            index = cc.pi8_indices
            ready[index] = np.maximum(ready[index], pi8_ready)
        if ready is not None:
            ready.setflags(write=False)
            entry = (ready, ready.tolist())
        else:
            entry = (None, None)
    per_cc[fingerprint] = entry
    if len(per_cc) > _READY_CACHE_MAX:
        per_cc.popitem(last=False)
    return entry


def _steady_ready_times(
    cc: CompiledCircuit, supply: SteadyRateSupply
) -> Optional[np.ndarray]:
    """Per-gate ancilla-ready lower bounds for a steady-rate supply.

    The ndarray half of :func:`_steady_ready_entry` — the form the
    point-batched engine stacks into ready matrices. Memoized: the same
    ``(circuit, rates-fingerprint)`` returns the identical read-only
    array. ``None`` when the supply never constrains this circuit.
    """
    spec = supply.ready_spec()
    return _steady_ready_entry(cc, spec.kind(ZERO), spec.kind(PI8))[0]


def _run_flat(
    cc: CompiledCircuit,
    movement: Optional[List[float]],
    supply_ready: Optional[Sequence[float]],
    qec: float,
) -> float:
    """Hot loop for infinite / steady-rate supplies without a cache.

    ``supply_ready`` must be a list of plain floats (the list half of
    :func:`_steady_ready_entry`): iterating an ndarray here yields
    np.float64 scalars whose per-element boxing roughly halves
    throughput, while ``.tolist()`` floats are bit-identical.
    """
    qubit_free = [0.0] * cc.num_qubits
    bits = [0.0] * cc.num_bits
    move_iter = movement if movement is not None else repeat(0.0)
    ready_iter = supply_ready if supply_ready is not None else repeat(0.0)
    for a, b, c, cond, move, ready, latency, result in zip(
        cc.q0, cc.q1, cc.q2, cc.cond_id, move_iter, ready_iter,
        cc.latency_us, cc.result_id,
    ):
        t = qubit_free[a]
        if b >= 0:
            v = qubit_free[b]
            if v > t:
                t = v
            if c >= 0:
                v = qubit_free[c]
                if v > t:
                    t = v
        if cond >= 0:
            v = bits[cond]
            if v > t:
                t = v
        if move:
            t += move
        if ready > t:
            t = ready
        finish = t + latency + qec
        qubit_free[a] = finish
        if b >= 0:
            qubit_free[b] = finish
            if c >= 0:
                qubit_free[c] = finish
        if result >= 0:
            bits[result] = finish
    return max(qubit_free) if qubit_free else 0.0


def _run_dedicated(
    cc: CompiledCircuit,
    movement: Optional[List[float]],
    zero: Optional[DedicatedKindSpec],
    pi8_spec: Optional[DedicatedKindSpec],
    qec: float,
) -> float:
    """Hot loop for per-qubit dedicated generators (the QLA model).

    Counter arithmetic is inlined over the specs' live rate/consumed
    lists (mutated in place, so observable state matches a per-gate
    ``acquire`` walk): availability depends on the consuming gate's home
    qubit, so there is no closed form over gate index alone.
    """
    qubit_free = [0.0] * cc.num_qubits
    bits = [0.0] * cc.num_bits
    move_iter = movement if movement is not None else repeat(0.0)
    zero_rates = zero.rates_per_us if zero is not None else None
    zero_consumed = zero.consumed if zero is not None else None
    pi8_rates = pi8_spec.rates_per_us if pi8_spec is not None else None
    pi8_consumed = pi8_spec.consumed if pi8_spec is not None else None
    for a, b, c, cond, move, pi8, latency, result in zip(
        cc.q0, cc.q1, cc.q2, cc.cond_id, move_iter, cc.pi8_flag,
        cc.latency_us, cc.result_id,
    ):
        t = qubit_free[a]
        if b >= 0:
            v = qubit_free[b]
            if v > t:
                t = v
            if c >= 0:
                v = qubit_free[c]
                if v > t:
                    t = v
        if cond >= 0:
            v = bits[cond]
            if v > t:
                t = v
        if move:
            t += move
        if zero_rates is not None:
            rate = zero_rates[a]
            if rate == 0.0:
                t = _INF
            else:
                zero_consumed[a] += ZEROS_PER_QEC
                v = zero_consumed[a] / rate
                if v > t:
                    t = v
        if pi8 and pi8_rates is not None:
            rate = pi8_rates[a]
            if rate == 0.0:
                t = _INF
            else:
                pi8_consumed[a] += 1
                v = pi8_consumed[a] / rate
                if v > t:
                    t = v
        finish = t + latency + qec
        qubit_free[a] = finish
        if b >= 0:
            qubit_free[b] = finish
            if c >= 0:
                qubit_free[c] = finish
        if result >= 0:
            bits[result] = finish
    return max(qubit_free) if qubit_free else 0.0


def _run_generic(
    cc: CompiledCircuit,
    movement: Optional[List[float]],
    acquire,
    qec: float,
) -> float:
    """Hot loop for arbitrary :class:`AncillaSupply` implementations."""
    qubit_free = [0.0] * cc.num_qubits
    bits = [0.0] * cc.num_bits
    move_iter = movement if movement is not None else repeat(0.0)
    for a, b, c, cond, move, pi8, latency, result in zip(
        cc.q0, cc.q1, cc.q2, cc.cond_id, move_iter, cc.pi8_flag,
        cc.latency_us, cc.result_id,
    ):
        t = qubit_free[a]
        if b >= 0:
            v = qubit_free[b]
            if v > t:
                t = v
            if c >= 0:
                v = qubit_free[c]
                if v > t:
                    t = v
        if cond >= 0:
            v = bits[cond]
            if v > t:
                t = v
        if move:
            t += move
        v = acquire(ZERO, a, ZEROS_PER_QEC, t)
        if v > t:
            t = v
        if pi8:
            v = acquire(PI8, a, 1, t)
            if v > t:
                t = v
        finish = t + latency + qec
        qubit_free[a] = finish
        if b >= 0:
            qubit_free[b] = finish
            if c >= 0:
                qubit_free[c] = finish
        if result >= 0:
            bits[result] = finish
    return max(qubit_free) if qubit_free else 0.0


def _run_cache(
    cc: CompiledCircuit,
    cqla: CqlaConfig,
    tech: TechnologyParams,
    movement: Optional[List[float]],
    supply_ready: Optional[Sequence[float]],
    acquire,
    qec: float,
):
    """Hot loop with CQLA compute-cache modeling.

    Returns ``(makespan, cache_misses, teleports)``. Supply constraints
    come either from a precomputed steady-rate ready list (plain floats,
    as in :func:`_run_flat`) or from per-gate ``acquire`` calls
    (``acquire`` may be None for infinite).
    """
    qubit_free = [0.0] * cc.num_qubits
    bits = [0.0] * cc.num_bits
    cache = _LruCache(cqla.cache_size(cc.num_qubits))
    ports = _PortBank(cqla.ports)
    t_teleport = teleport_latency(tech)
    misses = 0
    teleports = 0
    move_iter = movement if movement is not None else repeat(0.0)
    ready_iter = supply_ready if supply_ready is not None else repeat(0.0)
    for a, b, c, cond, move, ready, pi8, latency, result in zip(
        cc.q0, cc.q1, cc.q2, cc.cond_id, move_iter, ready_iter,
        cc.pi8_flag, cc.latency_us, cc.result_id,
    ):
        t = qubit_free[a]
        if b >= 0:
            v = qubit_free[b]
            if v > t:
                t = v
            if c >= 0:
                v = qubit_free[c]
                if v > t:
                    t = v
        if cond >= 0:
            v = bits[cond]
            if v > t:
                t = v
        q = a
        while q >= 0:
            if q in cache:
                cache.touch(q)
            else:
                misses += 1
                trips = 1 + (1 if cache.touch(q) is not None else 0)
                for _ in range(trips):
                    teleports += 1
                    t = ports.book(t, t_teleport)
            q = b if q == a else (c if q == b else -1)
        if move:
            t += move
        if ready > t:
            t = ready
        if acquire is not None:
            v = acquire(ZERO, a, ZEROS_PER_QEC, t)
            if v > t:
                t = v
            if pi8:
                v = acquire(PI8, a, 1, t)
                if v > t:
                    t = v
        finish = t + latency + qec
        qubit_free[a] = finish
        if b >= 0:
            qubit_free[b] = finish
            if c >= 0:
                qubit_free[c] = finish
        if result >= 0:
            bits[result] = finish
    makespan = max(qubit_free) if qubit_free else 0.0
    return makespan, misses, teleports
