"""Event-based dataflow simulation of kernel execution (Section 5.2).

The simulator walks the decomposed kernel's dependency DAG in program
order (which is topological). Each gate starts once

* its data dependencies have finished,
* its operand qubits are free,
* its ancillae are available from the architecture's supply model
  (two corrected zeros for the QEC step; one pi/8 for T-type gates), and
* any architecture movement (teleports, cache-miss fills) has completed;

it then occupies its qubits for gate latency plus the data/QEC interaction.
CQLA cache behavior follows the paper's sim-cache-style approach: an LRU
set of resident qubits, with misses teleporting qubits in through a
limited number of ports and dirty evictions teleporting out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    teleport_latency,
)
from repro.arch.supply import PI8, ZERO, AncillaSupply, InfiniteSupply
from repro.circuits import Circuit
from repro.circuits.gate import GateType
from repro.circuits.latency import LogicalLatencyModel
from repro.tech import ION_TRAP, TechnologyParams

_PI8_TYPES = (GateType.T, GateType.T_DAG)

#: Encoded zeros per QEC step (bit + phase correction).
ZEROS_PER_QEC = 2


@dataclass
class SimulationResult:
    """Outcome of one dataflow simulation."""

    makespan_us: float
    gates: int
    zero_ancillae_consumed: int
    pi8_ancillae_consumed: int
    cache_misses: int = 0
    teleports: int = 0

    @property
    def makespan_ms(self) -> float:
        return self.makespan_us / 1000.0


class _LruCache:
    """LRU residency set over qubit ids."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._order: Dict[int, int] = {}
        self._clock = 0

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._order

    def touch(self, qubit: int) -> Optional[int]:
        """Mark ``qubit`` resident; returns an evicted qubit or None."""
        evicted = None
        if qubit not in self._order and len(self._order) >= self.capacity:
            evicted = min(self._order, key=self._order.get)
            del self._order[evicted]
        self._clock += 1
        self._order[qubit] = self._clock
        return evicted


class DataflowSimulator:
    """Simulates kernel execution under an architecture's constraints.

    Args:
        circuit: Decomposed (encoded-gate-set) kernel circuit.
        tech: Technology parameters.
        supply: Ancilla supply model; defaults to infinite (speed of data).
        movement_penalty_us: Per-gate movement latency added before the
            gate (architecture-dependent; 0 for the pure dataflow bound).
        cqla: When given, enables compute-cache modeling with this config.
    """

    def __init__(
        self,
        circuit: Circuit,
        tech: TechnologyParams = ION_TRAP,
        supply: Optional[AncillaSupply] = None,
        movement_penalty_us: float = 0.0,
        two_qubit_movement_penalty_us: Optional[float] = None,
        cqla: Optional[CqlaConfig] = None,
    ) -> None:
        self.circuit = circuit
        self.tech = tech
        self.supply = supply if supply is not None else InfiniteSupply()
        self.move_1q = movement_penalty_us
        self.move_2q = (
            two_qubit_movement_penalty_us
            if two_qubit_movement_penalty_us is not None
            else movement_penalty_us
        )
        self.cqla = cqla
        self._logical = LogicalLatencyModel(tech)

    def run(self) -> SimulationResult:
        tech = self.tech
        logical = self._logical
        qec_interact = logical.qec_interaction_latency()
        qubit_free = [0.0] * self.circuit.num_qubits
        bit_ready: Dict[str, float] = {}
        cache = None
        ports: List[float] = []
        misses = 0
        teleports = 0
        if self.cqla is not None:
            cache = _LruCache(self.cqla.cache_size(self.circuit.num_qubits))
            ports = [0.0] * self.cqla.ports
        t_teleport = teleport_latency(tech)
        zeros = 0
        pi8s = 0
        makespan = 0.0
        for gate in self.circuit:
            qubits = gate.qubits
            start = max(qubit_free[q] for q in qubits)
            if gate.condition is not None:
                start = max(start, bit_ready.get(gate.condition, 0.0))
            # Cache fills: each non-resident operand teleports in through
            # the earliest-free port; dirty evictions teleport out first.
            if cache is not None:
                for q in qubits:
                    if q in cache:
                        cache.touch(q)
                        continue
                    misses += 1
                    evicted = cache.touch(q)
                    trips = 1 + (1 if evicted is not None else 0)
                    for _ in range(trips):
                        teleports += 1
                        port = min(range(len(ports)), key=ports.__getitem__)
                        begin = max(ports[port], start)
                        ports[port] = begin + t_teleport
                        start = ports[port]
            # Architecture movement for the gate itself.
            movement = self.move_2q if gate.is_two_qubit else self.move_1q
            if movement and not (gate.is_prep or gate.is_measurement):
                if movement >= t_teleport:
                    teleports += 1 if not gate.is_two_qubit else 2
                start += movement
            # Ancilla availability.
            home = qubits[0]
            start = max(start, self.supply.acquire(ZERO, home, ZEROS_PER_QEC, start))
            zeros += ZEROS_PER_QEC
            if gate.gate_type in _PI8_TYPES:
                start = max(start, self.supply.acquire(PI8, home, 1, start))
                pi8s += 1
            finish = start + logical.gate_latency(gate) + qec_interact
            for q in qubits:
                qubit_free[q] = finish
            if gate.result is not None:
                bit_ready[gate.result] = finish
            makespan = max(makespan, finish)
        return SimulationResult(
            makespan_us=makespan,
            gates=len(self.circuit),
            zero_ancillae_consumed=zeros,
            pi8_ancillae_consumed=pi8s,
            cache_misses=misses,
            teleports=teleports,
        )
