"""Parameter sweeps: Figure 8 (throughput) and Figure 15 (area).

Figure 8: execution time as a function of a steady encoded-zero ancilla
throughput, holding pi/8 supply proportional. The curve falls steeply
until the throughput crosses the kernel's average bandwidth (Table 3) and
then flattens at the speed-of-data floor.

Figure 15: execution time as a function of total ancilla-factory area for
the QLA, CQLA and Fully-Multiplexed microarchitectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.simulator import DataflowSimulator, SimulationResult
from repro.arch.supply import SteadyRateSupply, PI8, ZERO
from repro.kernels.analysis import KernelAnalysis
from repro.tech import TechnologyParams


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    makespan_us: float
    result: SimulationResult


def throughput_sweep(
    analysis: KernelAnalysis,
    throughputs_per_ms: Optional[Sequence[float]] = None,
) -> List[SweepPoint]:
    """Figure 8: execution time vs steady encoded-zero throughput.

    The pi/8 supply scales with the zero supply in the kernel's demand
    ratio, isolating the zero-bandwidth axis as in the paper's figure.

    Args:
        analysis: Characterized kernel.
        throughputs_per_ms: Zero-ancilla rates to sample; defaults to a
            logarithmic sweep bracketing the kernel's average bandwidth.
    """
    avg = analysis.zero_bandwidth_per_ms
    if throughputs_per_ms is None:
        throughputs_per_ms = np.geomspace(avg / 16.0, avg * 16.0, 17)
    pi8_ratio = (
        analysis.pi8_bandwidth_per_ms / avg if avg > 0 else 0.0
    )
    points = []
    for rate in throughputs_per_ms:
        supply = SteadyRateSupply({ZERO: rate, PI8: rate * pi8_ratio})
        sim = DataflowSimulator(analysis.circuit, analysis.tech, supply=supply)
        result = sim.run()
        points.append(SweepPoint(float(rate), result.makespan_us, result))
    return points


def _simulate_architecture(
    analysis: KernelAnalysis,
    kind: ArchitectureKind,
    area: float,
    tech: TechnologyParams,
    cqla: Optional[CqlaConfig] = None,
) -> SimulationResult:
    zero_demand = analysis.zero_bandwidth_per_ms
    pi8_demand = analysis.pi8_bandwidth_per_ms
    nq = analysis.circuit.num_qubits
    if kind is ArchitectureKind.QLA:
        config = QlaConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        sim = DataflowSimulator(
            analysis.circuit,
            tech,
            supply=supply,
            movement_penalty_us=config.movement_penalty(False, tech),
            two_qubit_movement_penalty_us=config.movement_penalty(True, tech),
        )
    elif kind is ArchitectureKind.CQLA:
        config = cqla or CqlaConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        sim = DataflowSimulator(
            analysis.circuit,
            tech,
            supply=supply,
            movement_penalty_us=config.movement_penalty(False, tech),
            two_qubit_movement_penalty_us=config.movement_penalty(True, tech),
            cqla=config,
        )
    elif kind is ArchitectureKind.MULTIPLEXED:
        config = MultiplexedConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        sim = DataflowSimulator(
            analysis.circuit,
            tech,
            supply=supply,
            movement_penalty_us=config.movement_penalty(False, tech),
            two_qubit_movement_penalty_us=config.movement_penalty(True, tech),
        )
    else:
        raise ValueError(f"unknown architecture {kind}")
    return sim.run()


def area_sweep(
    analysis: KernelAnalysis,
    areas: Optional[Sequence[float]] = None,
    kinds: Sequence[ArchitectureKind] = tuple(ArchitectureKind),
    cqla: Optional[CqlaConfig] = None,
) -> Dict[ArchitectureKind, List[SweepPoint]]:
    """Figure 15: execution time vs total ancilla-factory area per arch.

    Args:
        analysis: Characterized kernel.
        areas: Factory-area budgets (macroblocks); defaults to a log sweep
            from 1/8x to 512x the kernel's matched-demand area.
        kinds: Architectures to simulate.
        cqla: Optional CQLA configuration override.
    """
    from repro.arch.provisioning import area_breakdown

    if areas is None:
        matched = area_breakdown(analysis).factory_area
        areas = np.geomspace(matched / 8.0, matched * 512.0, 14)
    curves: Dict[ArchitectureKind, List[SweepPoint]] = {}
    for kind in kinds:
        points = []
        for area in areas:
            result = _simulate_architecture(analysis, kind, float(area),
                                            analysis.tech, cqla)
            points.append(SweepPoint(float(area), result.makespan_us, result))
        curves[kind] = points
    return curves


def plateau_makespan(points: Sequence[SweepPoint]) -> float:
    """Execution time in the asymptotic (largest-area) regime."""
    if not points:
        raise ValueError("empty sweep")
    return points[-1].makespan_us


def area_to_reach(
    points: Sequence[SweepPoint], target_makespan_us: float
) -> Optional[float]:
    """Smallest sampled area whose makespan is within the target."""
    for point in points:
        if point.makespan_us <= target_makespan_us:
            return point.x
    return None
