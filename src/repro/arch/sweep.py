"""Parameter sweeps: Figure 8 (throughput) and Figure 15 (area).

Figure 8: execution time as a function of a steady encoded-zero ancilla
throughput, holding pi/8 supply proportional. The curve falls steeply
until the throughput crosses the kernel's average bandwidth (Table 3) and
then flattens at the speed-of-data floor.

Figure 15: execution time as a function of total ancilla-factory area for
the QLA, CQLA and Fully-Multiplexed microarchitectures.

Both sweeps lower the kernel to its compiled array form exactly once and
share that compilation across every sweep point; both also accept a
prebuilt one via ``compiled=`` (compilation is additionally memoized per
circuit, so repeated sweeps over one kernel compile once either way). An
opt-in ``workers=N`` mode farms points out to worker processes via
:mod:`concurrent.futures`; worker processes do not share the parent's
compilation cache, so each chunk compiles its own copy — the prebuilt
form applies to serial runs. Simulation is deterministic and points are
reassembled in order, so parallel results are identical to serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.simulator import DataflowSimulator, SimulationResult
from repro.arch.supply import SteadyRateSupply, PI8, ZERO
from repro.circuits import Circuit
from repro.circuits.compiled import CompiledCircuit, compile_circuit
from repro.kernels.analysis import KernelAnalysis
from repro.tech import TechnologyParams

_ENGINES = ("compiled", "legacy")


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    makespan_us: float
    result: SimulationResult


def _run_engine(sim: DataflowSimulator, engine: str) -> SimulationResult:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
    return sim.run() if engine == "compiled" else sim.run_legacy()


def _chunk(items: Sequence, workers: int) -> List[list]:
    """Split ``items`` into at most ``workers`` contiguous, ordered chunks."""
    count = min(workers, len(items))
    bounds = np.linspace(0, len(items), count + 1).astype(int)
    return [list(items[lo:hi]) for lo, hi in zip(bounds, bounds[1:]) if hi > lo]


def _throughput_points(
    circuit: Circuit,
    tech: TechnologyParams,
    rates: Sequence[float],
    pi8_ratio: float,
    compiled: Optional[CompiledCircuit],
    engine: str,
) -> List[SweepPoint]:
    if compiled is None and engine == "compiled":
        compiled = compile_circuit(circuit, tech)
    points = []
    for rate in rates:
        supply = SteadyRateSupply({ZERO: rate, PI8: rate * pi8_ratio})
        sim = DataflowSimulator(circuit, tech, supply=supply, compiled=compiled)
        result = _run_engine(sim, engine)
        points.append(SweepPoint(float(rate), result.makespan_us, result))
    return points


def _throughput_chunk(args) -> List[SweepPoint]:
    """Worker-process task: one contiguous chunk of throughput points.

    Compiles the kernel once per chunk (worker processes do not share the
    parent's compilation cache).
    """
    circuit, tech, rates, pi8_ratio, engine = args
    return _throughput_points(circuit, tech, rates, pi8_ratio, None, engine)


def throughput_sweep(
    analysis: KernelAnalysis,
    throughputs_per_ms: Optional[Sequence[float]] = None,
    *,
    compiled: Optional[CompiledCircuit] = None,
    workers: Optional[int] = None,
    engine: str = "compiled",
) -> List[SweepPoint]:
    """Figure 8: execution time vs steady encoded-zero throughput.

    The pi/8 supply scales with the zero supply in the kernel's demand
    ratio, isolating the zero-bandwidth axis as in the paper's figure.

    Args:
        analysis: Characterized kernel.
        throughputs_per_ms: Zero-ancilla rates to sample; defaults to a
            logarithmic sweep bracketing the kernel's average bandwidth.
        compiled: Optional prebuilt compiled circuit to reuse; compiled
            once for the whole sweep when omitted. Serial runs only —
            worker processes compile their own copy per chunk.
        workers: When > 1, farm points out to this many worker processes.
            Results are identical to a serial run.
        engine: ``"compiled"`` (default) or ``"legacy"`` — the reference
            per-gate loop, kept selectable for baseline measurement.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
    avg = analysis.zero_bandwidth_per_ms
    if throughputs_per_ms is None:
        throughputs_per_ms = np.geomspace(avg / 16.0, avg * 16.0, 17)
    rates = [float(rate) for rate in throughputs_per_ms]
    pi8_ratio = (
        analysis.pi8_bandwidth_per_ms / avg if avg > 0 else 0.0
    )
    circuit, tech = analysis.circuit, analysis.tech
    if workers is not None and workers > 1 and len(rates) > 1:
        chunks = _chunk(rates, workers)
        tasks = [(circuit, tech, chunk, pi8_ratio, engine) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            return [
                point
                for chunk_points in pool.map(_throughput_chunk, tasks)
                for point in chunk_points
            ]
    return _throughput_points(circuit, tech, rates, pi8_ratio, compiled, engine)


def _simulate_point(
    circuit: Circuit,
    tech: TechnologyParams,
    zero_demand: float,
    pi8_demand: float,
    kind: ArchitectureKind,
    area: float,
    cqla: Optional[CqlaConfig],
    compiled: Optional[CompiledCircuit],
    engine: str,
) -> SimulationResult:
    nq = circuit.num_qubits
    if kind is ArchitectureKind.QLA:
        config = QlaConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        cache = None
    elif kind is ArchitectureKind.CQLA:
        config = cqla or CqlaConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        cache = config
    elif kind is ArchitectureKind.MULTIPLEXED:
        config = MultiplexedConfig()
        supply = config.build_supply(area, nq, zero_demand, pi8_demand, tech)
        cache = None
    else:
        raise ValueError(f"unknown architecture {kind}")
    sim = DataflowSimulator(
        circuit,
        tech,
        supply=supply,
        movement_penalty_us=config.movement_penalty(False, tech),
        two_qubit_movement_penalty_us=config.movement_penalty(True, tech),
        cqla=cache,
        compiled=compiled,
    )
    return _run_engine(sim, engine)


def _simulate_architecture(
    analysis: KernelAnalysis,
    kind: ArchitectureKind,
    area: float,
    tech: TechnologyParams,
    cqla: Optional[CqlaConfig] = None,
    compiled: Optional[CompiledCircuit] = None,
    engine: str = "compiled",
) -> SimulationResult:
    return _simulate_point(
        analysis.circuit,
        tech,
        analysis.zero_bandwidth_per_ms,
        analysis.pi8_bandwidth_per_ms,
        kind,
        area,
        cqla,
        compiled,
        engine,
    )


def _area_chunk(args) -> List[SimulationResult]:
    """Worker-process task: one contiguous chunk of (kind, area) points."""
    circuit, tech, zero_demand, pi8_demand, tasks, cqla, engine = args
    compiled = compile_circuit(circuit, tech) if engine == "compiled" else None
    return [
        _simulate_point(
            circuit, tech, zero_demand, pi8_demand, kind, area, cqla,
            compiled, engine,
        )
        for kind, area in tasks
    ]


def area_sweep(
    analysis: KernelAnalysis,
    areas: Optional[Sequence[float]] = None,
    kinds: Sequence[ArchitectureKind] = tuple(ArchitectureKind),
    cqla: Optional[CqlaConfig] = None,
    *,
    compiled: Optional[CompiledCircuit] = None,
    workers: Optional[int] = None,
    engine: str = "compiled",
) -> Dict[ArchitectureKind, List[SweepPoint]]:
    """Figure 15: execution time vs total ancilla-factory area per arch.

    Args:
        analysis: Characterized kernel.
        areas: Factory-area budgets (macroblocks); defaults to a log sweep
            from 1/8x to 512x the kernel's matched-demand area.
        kinds: Architectures to simulate.
        cqla: Optional CQLA configuration override.
        compiled: Optional prebuilt compiled circuit to reuse; compiled
            once for the whole sweep when omitted. Serial runs only —
            worker processes compile their own copy per chunk.
        workers: When > 1, farm points out to this many worker processes.
            Results are identical to a serial run.
        engine: ``"compiled"`` (default) or ``"legacy"`` — the reference
            per-gate loop, kept selectable for baseline measurement.
    """
    from repro.arch.provisioning import area_breakdown

    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
    if areas is None:
        matched = area_breakdown(analysis).factory_area
        areas = np.geomspace(matched / 8.0, matched * 512.0, 14)
    areas = [float(area) for area in areas]
    kinds = tuple(kinds)
    circuit, tech = analysis.circuit, analysis.tech
    zero_demand = analysis.zero_bandwidth_per_ms
    pi8_demand = analysis.pi8_bandwidth_per_ms
    flat: List[Tuple[ArchitectureKind, float]] = [
        (kind, area) for kind in kinds for area in areas
    ]
    if workers is not None and workers > 1 and len(flat) > 1:
        chunks = _chunk(flat, workers)
        tasks = [
            (circuit, tech, zero_demand, pi8_demand, chunk, cqla, engine)
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            results = [
                result
                for chunk_results in pool.map(_area_chunk, tasks)
                for result in chunk_results
            ]
    else:
        if compiled is None and engine == "compiled":
            compiled = analysis.compiled_circuit()
        results = [
            _simulate_point(
                circuit, tech, zero_demand, pi8_demand, kind, area, cqla,
                compiled, engine,
            )
            for kind, area in flat
        ]
    curves: Dict[ArchitectureKind, List[SweepPoint]] = {kind: [] for kind in kinds}
    for (kind, area), result in zip(flat, results):
        curves[kind].append(SweepPoint(area, result.makespan_us, result))
    return curves


def plateau_makespan(points: Sequence[SweepPoint]) -> float:
    """Execution time in the asymptotic (largest-area) regime."""
    if not points:
        raise ValueError("empty sweep")
    return points[-1].makespan_us


def area_to_reach(
    points: Sequence[SweepPoint], target_makespan_us: float
) -> Optional[float]:
    """Smallest sampled area whose makespan is within the target."""
    for point in points:
        if point.makespan_us <= target_makespan_us:
            return point.x
    return None
