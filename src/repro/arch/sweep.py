"""Parameter sweeps: Figure 8 (throughput) and Figure 15 (area).

Figure 8: execution time as a function of a steady encoded-zero ancilla
throughput, holding pi/8 supply proportional. The curve falls steeply
until the throughput crosses the kernel's average bandwidth (Table 3) and
then flattens at the speed-of-data floor.

Figure 15: execution time as a function of total ancilla-factory area for
the QLA, CQLA and Fully-Multiplexed microarchitectures.

Both sweeps are grid explorations: they enumerate a fixed lattice of
design points and batch them through
:class:`repro.explore.evaluator.Evaluator`, the same machinery behind
``python -m repro explore``. The kernel is lowered to its compiled array
form exactly once per sweep (or once per worker process under
``workers=N`` — the process-pool initializer compiles it, and each task
is a bare design-point chunk). Simulation is deterministic and points
come back in order, so parallel results are identical to serial ones.

Under the default compiled engine the evaluator resolves each sweep's
homogeneous point groups through the **point-batched** engine
(:mod:`repro.arch.batched`): the whole throughput axis — and each
QLA/CQLA/Multiplexed area ladder — executes as one vectorized pass over
a ``(points, qubits)`` state matrix rather than one interpreted walk per
point, bit-identically (roughly an order of magnitude faster at
Figure-8/15 grid sizes; see ``benchmarks/test_bench_sweeps.py``). CQLA
ladders ride a program-order lockstep kernel (port booking couples gates
within a point, never across points, so the cache model vectorizes over
the points axis too). Only ``engine="legacy"`` walks points one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.architectures import ArchitectureKind, CqlaConfig
from repro.arch.simulator import SimulationResult
from repro.circuits.compiled import CompiledCircuit
from repro.kernels.analysis import KernelAnalysis

_ENGINES = ("compiled", "legacy")


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    makespan_us: float
    result: SimulationResult


def _make_evaluator(
    analysis: KernelAnalysis,
    compiled: Optional[CompiledCircuit],
    workers: Optional[int],
    engine: str,
    cqla: Optional[CqlaConfig] = None,
):
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
    from repro.explore.evaluator import Evaluator

    return Evaluator(
        analysis=analysis,
        engine=engine,
        workers=workers,
        compiled=compiled,
        cqla=cqla,
    )


def throughput_sweep(
    analysis: KernelAnalysis,
    throughputs_per_ms: Optional[Sequence[float]] = None,
    *,
    compiled: Optional[CompiledCircuit] = None,
    workers: Optional[int] = None,
    engine: str = "compiled",
) -> List[SweepPoint]:
    """Figure 8: execution time vs steady encoded-zero throughput.

    The pi/8 supply scales with the zero supply in the kernel's demand
    ratio, isolating the zero-bandwidth axis as in the paper's figure.

    Args:
        analysis: Characterized kernel.
        throughputs_per_ms: Zero-ancilla rates to sample; defaults to a
            logarithmic sweep bracketing the kernel's average bandwidth.
        compiled: Optional prebuilt compiled circuit to reuse; compiled
            once for the whole sweep when omitted. Serial runs only —
            worker processes compile their own copy in the pool
            initializer.
        workers: When > 1, farm points out to this many worker processes.
            Results are identical to a serial run.
        engine: ``"compiled"`` (default) or ``"legacy"`` — the reference
            per-gate loop, kept selectable for baseline measurement.
    """
    avg = analysis.zero_bandwidth_per_ms
    if throughputs_per_ms is None:
        throughputs_per_ms = np.geomspace(avg / 16.0, avg * 16.0, 17)
    rates = [float(rate) for rate in throughputs_per_ms]
    pi8_ratio = (
        analysis.pi8_bandwidth_per_ms / avg if avg > 0 else 0.0
    )
    evaluator = _make_evaluator(analysis, compiled, workers, engine)
    evaluations = evaluator.evaluate(
        [{"zero_rate": rate, "pi8_ratio": pi8_ratio} for rate in rates]
    )
    return [
        SweepPoint(rate, evaluation.result.makespan_us, evaluation.result)
        for rate, evaluation in zip(rates, evaluations)
    ]


def _simulate_architecture(
    analysis: KernelAnalysis,
    kind: ArchitectureKind,
    area: float,
    cqla: Optional[CqlaConfig] = None,
    compiled: Optional[CompiledCircuit] = None,
    engine: str = "compiled",
) -> SimulationResult:
    """One architecture point under ``analysis.tech`` (shared with the
    Qalypso comparison)."""
    evaluator = _make_evaluator(analysis, compiled, None, engine, cqla)
    point = {"arch": kind.value, "factory_area": float(area)}
    return evaluator.evaluate([point])[0].result


def area_sweep(
    analysis: KernelAnalysis,
    areas: Optional[Sequence[float]] = None,
    kinds: Sequence[ArchitectureKind] = tuple(ArchitectureKind),
    cqla: Optional[CqlaConfig] = None,
    *,
    compiled: Optional[CompiledCircuit] = None,
    workers: Optional[int] = None,
    engine: str = "compiled",
) -> Dict[ArchitectureKind, List[SweepPoint]]:
    """Figure 15: execution time vs total ancilla-factory area per arch.

    Args:
        analysis: Characterized kernel.
        areas: Factory-area budgets (macroblocks); defaults to a log sweep
            from 1/8x to 512x the kernel's matched-demand area.
        kinds: Architectures to simulate.
        cqla: Optional CQLA configuration override.
        compiled: Optional prebuilt compiled circuit to reuse; compiled
            once for the whole sweep when omitted. Serial runs only —
            worker processes compile their own copy in the pool
            initializer.
        workers: When > 1, farm points out to this many worker processes.
            Results are identical to a serial run.
        engine: ``"compiled"`` (default) or ``"legacy"`` — the reference
            per-gate loop, kept selectable for baseline measurement.
    """
    from repro.arch.provisioning import area_breakdown

    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
    if areas is None:
        matched = area_breakdown(analysis).factory_area
        areas = np.geomspace(matched / 8.0, matched * 512.0, 14)
    areas = [float(area) for area in areas]
    kinds = tuple(kinds)
    flat: List[Tuple[ArchitectureKind, float]] = [
        (kind, area) for kind in kinds for area in areas
    ]
    evaluator = _make_evaluator(analysis, compiled, workers, engine, cqla)
    evaluations = evaluator.evaluate(
        [{"arch": kind.value, "factory_area": area} for kind, area in flat]
    )
    curves: Dict[ArchitectureKind, List[SweepPoint]] = {kind: [] for kind in kinds}
    for (kind, area), evaluation in zip(flat, evaluations):
        curves[kind].append(
            SweepPoint(area, evaluation.result.makespan_us, evaluation.result)
        )
    return curves


def plateau_makespan(points: Sequence[SweepPoint]) -> float:
    """Execution time in the asymptotic (largest-area) regime."""
    if not points:
        raise ValueError("empty sweep")
    return points[-1].makespan_us


def area_to_reach(
    points: Sequence[SweepPoint], target_makespan_us: float
) -> Optional[float]:
    """Smallest sampled area whose makespan is within the target."""
    for point in points:
        if point.makespan_us <= target_makespan_us:
            return point.x
    return None
