"""Ancilla supply models.

A supply answers one question: given that a gate wants ``count`` encoded
ancillae of some kind no earlier than time ``earliest``, when are they
available? Production is modeled as a constant rate with unlimited
buffering (factories never stall waiting for consumers; finished ancillae
wait in output ports), which matches the paper's steady-throughput framing
in Figure 8.

Kinds are the two the paper tracks: "zero" (corrected encoded zeros for
QEC) and "pi8" (encoded pi/8 ancillae for non-transversal gates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

ZERO = "zero"
PI8 = "pi8"


class AncillaSupply(Protocol):
    """Protocol for ancilla availability queries."""

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        """Reserve ``count`` ancillae; returns the time they are ready."""
        ...


class InfiniteSupply:
    """Ancillae always ready — the speed-of-data limit."""

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        return earliest


class _RateCounter:
    """Sequential consumption from a constant production rate.

    The k-th ancilla (1-based) exists at time k / rate; consumption is
    FIFO, so the ready time for a batch is when the last of the batch has
    been produced (or ``earliest``, whichever is later).
    """

    __slots__ = ("rate", "consumed")

    def __init__(self, rate_per_us: float) -> None:
        if rate_per_us < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_us}")
        self.rate = rate_per_us
        self.consumed = 0

    def acquire(self, count: int, earliest: float) -> float:
        if count <= 0:
            return earliest
        if self.rate == 0:
            return float("inf")
        self.consumed += count
        produced_by = self.consumed / self.rate
        return max(earliest, produced_by)


class SteadyRateSupply:
    """One global production rate per ancilla kind (Figure 8's model).

    Because consumption is FIFO from a constant rate, availability has a
    closed form: the k-th ancilla of a kind exists at ``k / rate``. The
    accessors below expose the counters so the compiled dataflow engine
    can evaluate that closed form for a whole circuit at once instead of
    calling :meth:`acquire` per gate; :meth:`advance` lets it commit the
    aggregate consumption afterwards so supply state stays identical to a
    gate-by-gate run.

    Args:
        rates_per_ms: Production rate per kind in ancillae per millisecond.
    """

    def __init__(self, rates_per_ms: Dict[str, float]) -> None:
        self._counters = {
            kind: _RateCounter(rate / 1000.0) for kind, rate in rates_per_ms.items()
        }

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        counter = self._counters.get(kind)
        if counter is None:
            return earliest
        return counter.acquire(count, earliest)

    def rate_per_us(self, kind: str) -> Optional[float]:
        """Production rate of ``kind`` in ancillae per microsecond.

        Returns None when this supply does not track the kind at all
        (in which case :meth:`acquire` never constrains it).
        """
        counter = self._counters.get(kind)
        return counter.rate if counter is not None else None

    def consumed_so_far(self, kind: str) -> int:
        """Ancillae of ``kind`` consumed from this supply to date."""
        counter = self._counters.get(kind)
        return counter.consumed if counter is not None else 0

    def advance(self, kind: str, count: int) -> None:
        """Record ``count`` ancillae as consumed without a time query.

        Mirrors :meth:`acquire`'s bookkeeping (a zero-rate counter never
        advances — acquire returns infinity before incrementing), so a
        closed-form run leaves the same observable state as a per-gate one.
        """
        counter = self._counters.get(kind)
        if counter is not None and counter.rate != 0 and count > 0:
            counter.consumed += count

    def steady_state(self, kind: str) -> Optional[Tuple[float, int]]:
        """``(rate_per_us, consumed_so_far)`` for ``kind``, or None.

        The array form the point-batched dataflow engine consumes: one
        ``(rate, consumed)`` pair per sweep point stacks into the rate
        vector behind its ``(points, gates)`` ready matrix
        (:func:`repro.arch.batched.steady_ready_matrix`). None means the
        kind is untracked and never constrains.
        """
        counter = self._counters.get(kind)
        if counter is None:
            return None
        return counter.rate, counter.consumed


class PooledSupply(SteadyRateSupply):
    """Shared factories feeding all consumers — the Fully-Multiplexed model.

    Identical availability math to :class:`SteadyRateSupply`; the separate
    name documents intent at call sites (rates here derive from a factory
    area budget rather than a swept parameter).
    """


class DedicatedSupply:
    """A private generator per data qubit — the QLA model (Figure 14a).

    Each qubit's ancillae come only from its own generator, so generators
    of idle qubits cannot help busy ones: the imbalance the paper blames
    for QLA's two-orders-of-magnitude area overhead.

    Per-qubit state lives in flat parallel lists (rates, consumed counts)
    rather than counter objects: the compiled dataflow engine indexes the
    lists directly in its hot loop, and the point-batched engine lifts
    them wholesale into ``(points, qubits)`` matrices — both without any
    per-counter attribute traffic.

    Args:
        rates_per_ms: *Per-qubit* production rate per kind.
        num_qubits: Number of data qubits (each gets its own counters).
    """

    def __init__(self, rates_per_ms: Dict[str, float], num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        self._rates: Dict[str, List[float]] = {}
        self._consumed: Dict[str, List[int]] = {}
        for kind, rate in rates_per_ms.items():
            rate_per_us = rate / 1000.0
            if rate_per_us < 0:
                raise ValueError(f"rate must be >= 0, got {rate_per_us}")
            self._rates[kind] = [rate_per_us] * num_qubits
            self._consumed[kind] = [0] * num_qubits

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        # Same arithmetic and ordering as _RateCounter.acquire.
        rates = self._rates.get(kind)
        if rates is None or count <= 0:
            return earliest
        rate = rates[qubit]
        if rate == 0:
            return float("inf")
        consumed = self._consumed[kind]
        consumed[qubit] += count
        produced_by = consumed[qubit] / rate
        return max(earliest, produced_by)

    def dedicated_state(
        self, kind: str
    ) -> Optional[Tuple[List[float], List[int]]]:
        """Per-qubit ``(rates, consumed)`` vectors for ``kind``, or None.

        The array form both fast engines consume: the compiled serial
        loop indexes (and mutates) the live lists in place of per-gate
        :meth:`acquire` dispatch, and the point-batched engine stacks one
        pair per sweep point into the ``(points, qubits)`` matrices
        behind :func:`repro.arch.batched.dedicated_ready_matrix`. The
        returned lists are this supply's live state — treat them as
        read-only unless you are replaying consumption exactly.
        """
        rates = self._rates.get(kind)
        if rates is None:
            return None
        return rates, self._consumed[kind]

    def advance_per_qubit(self, kind: str, counts: List[int]) -> None:
        """Record per-qubit consumption without time queries.

        ``counts[q]`` ancillae of ``kind`` are charged to qubit ``q``'s
        generator, mirroring :meth:`acquire`'s bookkeeping (zero-rate
        generators never advance), so a batched run leaves the same
        observable state as a gate-by-gate one.
        """
        rates = self._rates.get(kind)
        if rates is None:
            return
        consumed = self._consumed[kind]
        consumed[:] = [
            c if (n == 0 or r == 0.0) else c + n
            for c, r, n in zip(consumed, rates, counts)
        ]
