"""Ancilla supply models.

A supply answers one question: given that a gate wants ``count`` encoded
ancillae of some kind no earlier than time ``earliest``, when are they
available? Production is modeled as a constant rate with unlimited
buffering (factories never stall waiting for consumers; finished ancillae
wait in output ports), which matches the paper's steady-throughput framing
in Figure 8.

Kinds are the two the paper tracks: "zero" (corrected encoded zeros for
QEC) and "pi8" (encoded pi/8 ancillae for non-transversal gates).

Every supply also *describes* its availability math declaratively via
:meth:`ready_spec`: a :class:`ReadySpec` mapping each tracked kind to a
closed-form ready-time description (steady-rate counter or per-qubit
dedicated counters; untracked kinds are unconstrained). The compiled and
point-batched dataflow engines lower that description into array kernels
instead of calling :meth:`acquire` per gate — see
:func:`declared_ready_spec` for the opt-in rules that keep overridden
subclasses off the lowered path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol, Tuple, Union

ZERO = "zero"
PI8 = "pi8"


@dataclass(frozen=True)
class SteadyKindSpec:
    """Closed form for one globally-pooled FIFO counter.

    The k-th ancilla (1-based, counting from ``consumed``) exists at
    ``(consumed + k) / rate_per_us``; a zero rate means the kind never
    becomes available (and, matching :class:`_RateCounter`, consumption
    is *not* recorded for it). Values are a snapshot taken at
    :meth:`ready_spec` time — engines must commit consumption back via
    ``advance(kind, total)`` after a lowered run.
    """

    rate_per_us: float
    consumed: int


@dataclass(frozen=True, eq=False)
class DedicatedKindSpec:
    """Closed form for per-qubit private counters (the QLA model).

    ``rates_per_us[q]`` / ``consumed[q]`` describe qubit ``q``'s private
    generator. The lists are the supply's *live* state, not a snapshot:
    the serial engine may replay consumption into them in place (exactly
    as per-gate ``acquire`` would), while the batched engine treats them
    as read-only and commits via ``advance_per_qubit(kind, counts)``.
    """

    rates_per_us: List[float]
    consumed: List[int]


KindSpec = Union[SteadyKindSpec, DedicatedKindSpec]


@dataclass(frozen=True, eq=False)
class ReadySpec:
    """Declarative ready-time description of a whole supply.

    ``kinds`` maps each *tracked* ancilla kind to its closed form; a kind
    absent from the mapping never constrains (``acquire`` returns
    ``earliest`` unchanged). An empty mapping is the infinite supply.
    """

    kinds: Mapping[str, KindSpec] = field(default_factory=dict)

    def kind(self, kind: str) -> Optional[KindSpec]:
        """The closed form for ``kind``, or None if unconstrained."""
        return self.kinds.get(kind)


class AncillaSupply(Protocol):
    """Protocol for ancilla availability queries."""

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        """Reserve ``count`` ancillae; returns the time they are ready."""
        ...


#: Methods whose behavior a ``ready_spec()`` claims to describe. If a
#: subclass overrides any of these *below* the class that defined its
#: inherited ``ready_spec`` (i.e. closer to the instance in the MRO), the
#: spec no longer speaks for the supply's actual availability/state math,
#: and :func:`declared_ready_spec` refuses to lower it. Re-declaring
#: ``ready_spec`` alongside the overrides opts the subclass back in.
SPEC_COUPLED_METHODS = (
    "acquire",
    "advance",
    "advance_per_qubit",
    "steady_state",
    "dedicated_state",
    "rate_per_us",
    "consumed_so_far",
)


def declared_ready_spec(supply: object) -> Optional[ReadySpec]:
    """``supply.ready_spec()`` gated on explicit opt-in, else None.

    The dataflow engines use this — never a bare ``ready_spec()`` call —
    to decide whether a supply may take the lowered (closed-form / array)
    path instead of per-gate :meth:`AncillaSupply.acquire` dispatch.
    A spec is honored only when the class that defines ``ready_spec`` in
    the instance's MRO is at least as derived as every class defining one
    of :data:`SPEC_COUPLED_METHODS`; otherwise a subclass overriding only
    ``advance`` or ``steady_state`` would be *half-batched* — lowered
    with the parent's math but committed with the child's. Instance-level
    attribute overrides of any coupled method (monkeypatching) likewise
    disqualify the supply.

    Returns None for supplies with no ``ready_spec`` at all (custom
    :class:`AncillaSupply` implementations), which simply stay on the
    per-gate path.
    """
    cls = type(supply)
    inst_dict = getattr(supply, "__dict__", None)
    if inst_dict:
        if "ready_spec" in inst_dict:
            return None
        if any(name in inst_dict for name in SPEC_COUPLED_METHODS):
            return None
    owner_index: Optional[int] = None
    for index, base in enumerate(cls.__mro__):
        if "ready_spec" in base.__dict__:
            owner_index = index
            break
    if owner_index is None:
        return None
    for base in cls.__mro__[:owner_index]:
        for name in SPEC_COUPLED_METHODS:
            if name in base.__dict__:
                return None
    spec = supply.ready_spec()  # type: ignore[attr-defined]
    if not isinstance(spec, ReadySpec):
        return None
    return spec


class InfiniteSupply:
    """Ancillae always ready — the speed-of-data limit."""

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        return earliest

    def ready_spec(self) -> ReadySpec:
        """No kind ever constrains: the empty declarative spec."""
        return ReadySpec({})


class _RateCounter:
    """Sequential consumption from a constant production rate.

    The k-th ancilla (1-based) exists at time k / rate; consumption is
    FIFO, so the ready time for a batch is when the last of the batch has
    been produced (or ``earliest``, whichever is later).
    """

    __slots__ = ("rate", "consumed")

    def __init__(self, rate_per_us: float) -> None:
        if rate_per_us < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_us}")
        self.rate = rate_per_us
        self.consumed = 0

    def acquire(self, count: int, earliest: float) -> float:
        if count <= 0:
            return earliest
        if self.rate == 0:
            return float("inf")
        self.consumed += count
        produced_by = self.consumed / self.rate
        return max(earliest, produced_by)


class SteadyRateSupply:
    """One global production rate per ancilla kind (Figure 8's model).

    Because consumption is FIFO from a constant rate, availability has a
    closed form: the k-th ancilla of a kind exists at ``k / rate``. The
    accessors below expose the counters so the compiled dataflow engine
    can evaluate that closed form for a whole circuit at once instead of
    calling :meth:`acquire` per gate; :meth:`advance` lets it commit the
    aggregate consumption afterwards so supply state stays identical to a
    gate-by-gate run.

    Args:
        rates_per_ms: Production rate per kind in ancillae per millisecond.
    """

    def __init__(self, rates_per_ms: Dict[str, float]) -> None:
        self._counters = {
            kind: _RateCounter(rate / 1000.0) for kind, rate in rates_per_ms.items()
        }

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        counter = self._counters.get(kind)
        if counter is None:
            return earliest
        return counter.acquire(count, earliest)

    def rate_per_us(self, kind: str) -> Optional[float]:
        """Production rate of ``kind`` in ancillae per microsecond.

        Returns None when this supply does not track the kind at all
        (in which case :meth:`acquire` never constrains it).
        """
        counter = self._counters.get(kind)
        return counter.rate if counter is not None else None

    def consumed_so_far(self, kind: str) -> int:
        """Ancillae of ``kind`` consumed from this supply to date."""
        counter = self._counters.get(kind)
        return counter.consumed if counter is not None else 0

    def advance(self, kind: str, count: int) -> None:
        """Record ``count`` ancillae as consumed without a time query.

        Mirrors :meth:`acquire`'s bookkeeping (a zero-rate counter never
        advances — acquire returns infinity before incrementing), so a
        closed-form run leaves the same observable state as a per-gate one.
        """
        counter = self._counters.get(kind)
        if counter is not None and counter.rate != 0 and count > 0:
            counter.consumed += count

    def steady_state(self, kind: str) -> Optional[Tuple[float, int]]:
        """``(rate_per_us, consumed_so_far)`` for ``kind``, or None.

        The array form the point-batched dataflow engine consumes: one
        ``(rate, consumed)`` pair per sweep point stacks into the rate
        vector behind its ``(points, gates)`` ready matrix
        (:func:`repro.arch.batched.steady_ready_matrix`). None means the
        kind is untracked and never constrains.
        """
        counter = self._counters.get(kind)
        if counter is None:
            return None
        return counter.rate, counter.consumed

    def ready_spec(self) -> ReadySpec:
        """One :class:`SteadyKindSpec` snapshot per tracked kind."""
        return ReadySpec(
            {
                kind: SteadyKindSpec(counter.rate, counter.consumed)
                for kind, counter in self._counters.items()
            }
        )


class PooledSupply(SteadyRateSupply):
    """Shared factories feeding all consumers — the Fully-Multiplexed model.

    Identical availability math to :class:`SteadyRateSupply`; the separate
    name documents intent at call sites (rates here derive from a factory
    area budget rather than a swept parameter).
    """


class DedicatedSupply:
    """A private generator per data qubit — the QLA model (Figure 14a).

    Each qubit's ancillae come only from its own generator, so generators
    of idle qubits cannot help busy ones: the imbalance the paper blames
    for QLA's two-orders-of-magnitude area overhead.

    Per-qubit state lives in flat parallel lists (rates, consumed counts)
    rather than counter objects: the compiled dataflow engine indexes the
    lists directly in its hot loop, and the point-batched engine lifts
    them wholesale into ``(points, qubits)`` matrices — both without any
    per-counter attribute traffic.

    Args:
        rates_per_ms: *Per-qubit* production rate per kind.
        num_qubits: Number of data qubits (each gets its own counters).
    """

    def __init__(self, rates_per_ms: Dict[str, float], num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        self._rates: Dict[str, List[float]] = {}
        self._consumed: Dict[str, List[int]] = {}
        for kind, rate in rates_per_ms.items():
            rate_per_us = rate / 1000.0
            if rate_per_us < 0:
                raise ValueError(f"rate must be >= 0, got {rate_per_us}")
            self._rates[kind] = [rate_per_us] * num_qubits
            self._consumed[kind] = [0] * num_qubits

    def acquire(self, kind: str, qubit: int, count: int, earliest: float) -> float:
        # Same arithmetic and ordering as _RateCounter.acquire.
        rates = self._rates.get(kind)
        if rates is None or count <= 0:
            return earliest
        rate = rates[qubit]
        if rate == 0:
            return float("inf")
        consumed = self._consumed[kind]
        consumed[qubit] += count
        produced_by = consumed[qubit] / rate
        return max(earliest, produced_by)

    def dedicated_state(
        self, kind: str
    ) -> Optional[Tuple[List[float], List[int]]]:
        """Per-qubit ``(rates, consumed)`` vectors for ``kind``, or None.

        The array form both fast engines consume: the compiled serial
        loop indexes (and mutates) the live lists in place of per-gate
        :meth:`acquire` dispatch, and the point-batched engine stacks one
        pair per sweep point into the ``(points, qubits)`` matrices
        behind :func:`repro.arch.batched.dedicated_ready_matrix`. The
        returned lists are this supply's live state — treat them as
        read-only unless you are replaying consumption exactly.
        """
        rates = self._rates.get(kind)
        if rates is None:
            return None
        return rates, self._consumed[kind]

    def ready_spec(self) -> ReadySpec:
        """One :class:`DedicatedKindSpec` per tracked kind (live lists)."""
        return ReadySpec(
            {
                kind: DedicatedKindSpec(rates, self._consumed[kind])
                for kind, rates in self._rates.items()
            }
        )

    def advance_per_qubit(self, kind: str, counts: List[int]) -> None:
        """Record per-qubit consumption without time queries.

        ``counts[q]`` ancillae of ``kind`` are charged to qubit ``q``'s
        generator, mirroring :meth:`acquire`'s bookkeeping (zero-rate
        generators never advance), so a batched run leaves the same
        observable state as a gate-by-gate one.
        """
        rates = self._rates.get(kind)
        if rates is None:
            return
        consumed = self._consumed[kind]
        consumed[:] = [
            c if (n == 0 or r == 0.0) else c + n
            for c, r, n in zip(consumed, rates, counts)
        ]
