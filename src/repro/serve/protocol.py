"""Wire format of the exploration service: JSON over HTTP.

One request shape and one response shape, shared by the server and the
client so the two can never drift:

* request (``POST /evaluate``)::

      {"kernel": "qcla", "width": 32, "engine": "compiled",
       "points": [{"arch": "qla", "factory_area": 80.0}, ...]}

* response (200)::

      {"evaluations": [<evaluation>, ...],
       "stats": {"simulations_run": 2, "cache_hits": 1, ...}}

where each ``<evaluation>`` is the JSON image of an
:class:`~repro.explore.evaluator.Evaluation` — the same shape the
result store persists, so a served evaluation decodes bit-identically
to one read from a local cache. ``stats`` is the *delta* of the
server-side evaluator's health counters for this request, letting the
client account simulations and cache hits exactly as a local run would.

Everything here raises :class:`ProtocolError` (a ``ValueError``) on
malformed documents; transport-level truncation (a torn response body)
surfaces as ``json.JSONDecodeError`` or ``ProtocolError`` at the caller
and is treated as retryable, never as data.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.simulator import SimulationResult
from repro.explore.evaluator import ENGINES, Evaluation

#: Routes the server exposes.
EVALUATE_PATH = "/evaluate"
HEALTH_PATH = "/healthz"
READY_PATH = "/readyz"
METRICS_PATH = "/metrics"

#: Largest request body the server will read (a design-point batch is a
#: few KB; anything near this is a client bug, not a workload).
MAX_REQUEST_BYTES = 8 * 1024 * 1024

CONTENT_TYPE_JSON = "application/json"
#: Prometheus text exposition format (what /metrics serves).
CONTENT_TYPE_METRICS = "text/plain; version=0.0.4; charset=utf-8"


class ProtocolError(ValueError):
    """A request or response document does not match the wire format."""


# ----------------------------------------------------------------------
# Requests


def encode_request(
    kernel: str, width: int, points: Sequence[Dict[str, object]],
    engine: str = "compiled",
) -> bytes:
    document = {
        "kernel": kernel,
        "width": width,
        "engine": engine,
        "points": [dict(point) for point in points],
    }
    try:
        return json.dumps(document, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"design points are not JSON-serializable: {exc}")


def decode_request(payload: bytes) -> Dict[str, object]:
    """Parse and validate an ``/evaluate`` request body."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise ProtocolError("request body must be a JSON object")
    kernel = document.get("kernel")
    width = document.get("width")
    engine = document.get("engine", "compiled")
    points = document.get("points")
    if not isinstance(kernel, str) or not kernel:
        raise ProtocolError("request needs a non-empty string 'kernel'")
    if not isinstance(width, int) or isinstance(width, bool) or width < 1:
        raise ProtocolError(f"request needs a positive integer 'width', got {width!r}")
    if engine not in ENGINES:
        raise ProtocolError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if not isinstance(points, list) or not points:
        raise ProtocolError("request needs a non-empty 'points' list")
    for point in points:
        if not isinstance(point, dict):
            raise ProtocolError(f"each point must be an object, got {point!r}")
    return {"kernel": kernel, "width": width, "engine": engine, "points": points}


# ----------------------------------------------------------------------
# Evaluations


def encode_evaluation(evaluation: Evaluation) -> Dict[str, object]:
    return {
        "point": dict(evaluation.point),
        "result": (
            asdict(evaluation.result) if evaluation.result is not None else None
        ),
        "areas": {
            "factory": evaluation.factory_area,
            "data": evaluation.data_area,
            "total": evaluation.total_area,
        },
        "from_cache": evaluation.from_cache,
        "error": evaluation.error,
    }


def decode_evaluation(raw: object) -> Evaluation:
    if not isinstance(raw, dict):
        raise ProtocolError(f"evaluation must be an object, got {raw!r}")
    try:
        point = raw["point"]
        areas = raw["areas"]
        if not isinstance(point, dict) or not isinstance(areas, dict):
            raise ProtocolError(f"malformed evaluation: {raw!r}")
        result_raw = raw.get("result")
        result: Optional[SimulationResult] = (
            SimulationResult(**result_raw) if result_raw is not None else None
        )
        return Evaluation(
            point=tuple(sorted(point.items())),
            result=result,
            factory_area=float(areas["factory"]),
            data_area=float(areas["data"]),
            total_area=float(areas["total"]),
            from_cache=bool(raw.get("from_cache", False)),
            error=raw.get("error"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed evaluation ({exc}): {raw!r}")


# ----------------------------------------------------------------------
# Responses


def encode_response(
    evaluations: Sequence[Evaluation], stats: Dict[str, int]
) -> bytes:
    document = {
        "evaluations": [encode_evaluation(e) for e in evaluations],
        "stats": dict(stats),
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_response(payload: bytes) -> Tuple[List[Evaluation], Dict[str, int]]:
    """Parse an ``/evaluate`` response; torn bodies raise ProtocolError."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"response body is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise ProtocolError("response body must be a JSON object")
    raw = document.get("evaluations")
    stats = document.get("stats", {})
    if not isinstance(raw, list) or not isinstance(stats, dict):
        raise ProtocolError("response needs 'evaluations' list and 'stats' object")
    return [decode_evaluation(entry) for entry in raw], stats


def encode_error(message: str) -> bytes:
    return json.dumps({"error": message}).encode("utf-8")


def error_message(payload: bytes) -> str:
    """Best-effort extraction of an error body's message."""
    try:
        document = json.loads(payload.decode("utf-8"))
        if isinstance(document, dict) and isinstance(document.get("error"), str):
            return document["error"]
    except (UnicodeDecodeError, json.JSONDecodeError):
        pass
    return payload.decode("utf-8", errors="replace")[:200]
