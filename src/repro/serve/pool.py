"""Replica-set serving: client-side failover across an exploration fleet.

PR 8 made one exploration server survivable; this module makes a *fleet*
of them survivable. A :class:`ReplicaSet` takes an ordered list of
server URLs and routes every ``/evaluate`` through three layers of
defense, so a request only fails when the whole fleet does:

* **Per-replica circuit breakers** (:class:`CircuitBreaker`). Each
  replica's health is tracked from the failures its own transport
  reports: ``failure_threshold`` consecutive failed requests flip the
  breaker *closed → open* and traffic stops flowing to that replica.
  After ``cooldown`` seconds the breaker turns *half-open* and admits
  exactly one probe — a real request, or a ``/readyz`` probe via
  :meth:`ReplicaSet.try_recover` — whose outcome closes or re-opens it.
  Breaker state is exported per replica as the
  ``repro_pool_breaker_state`` gauge (0 closed, 1 half-open, 2 open)
  with ``repro_pool_breaker_opens_total`` / ``repro_pool_probes_total``
  counters alongside.

* **Failover.** A refused/hung/torn/5xx request (anything the
  single-server :class:`~repro.serve.client.Client` classifies as
  :class:`~repro.serve.client.ServerUnavailable`) moves to the next
  healthy replica with the *remaining* deadline propagated — the fleet
  shares one wall-clock budget, replicas don't each get a fresh one.
  Terminal 4xx responses (:class:`~repro.serve.client.RequestError`)
  never fail over: a malformed request is the caller's bug on every
  replica. Only when no replica can take the request does
  :class:`AllReplicasUnavailable` escape — the "fleet died" rung of the
  degrade ladder that :class:`~repro.serve.client.RemoteEvaluator`
  answers with bit-identical local evaluation.

* **Hedged requests** (optional). With ``hedge_after`` set, a replica
  that hasn't answered within that many seconds is raced against the
  next healthy replica and the first response wins. Duplicated work is
  safe by construction: the replicas share one content-addressed store
  and the lease protocol arbitrates concurrent simulation of the same
  point, so a hedge can waste at most one cache read.

The set is intentionally client-side only: servers never know they are
replicas. N ``repro serve`` processes pointed at one ``--cache-dir``
*are* the fleet, exactly as the ROADMAP's "many evaluators, one store"
story promised.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.explore.evaluator import Evaluation
from repro.obs import metrics as _metrics
from repro.serve.client import (
    Client,
    RequestError,
    ServeError,
    ServerUnavailable,
)
from repro.util.backoff import Backoff

#: Breaker states, in escalation order.
CLOSED = "closed"
HALF_OPEN = "half-open"
OPEN = "open"

_STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class AllReplicasUnavailable(ServerUnavailable):
    """Every replica's breaker is open or every attempt failed.

    A subclass of :class:`ServerUnavailable`, so single-server callers
    (``RemoteEvaluator``, the CLI) handle fleet death exactly like
    server death: degrade to local evaluation.
    """


class CircuitBreaker:
    """Per-replica circuit breaker: closed → open → half-open probe.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures open the breaker (any success resets the streak).
    * **open** — requests are refused locally for ``cooldown`` seconds.
    * **half-open** — after the cooldown one request (the probe) is
      admitted; its success closes the breaker, its failure re-opens it
      and restarts the cooldown.

    Thread-safe; the transition open → half-open happens lazily on
    observation, against an injectable monotonic ``clock`` so tests can
    step time instead of sleeping.

    When ``name`` is given (the replica's URL), transitions are mirrored
    into the metrics registry: the ``repro_pool_breaker_state`` gauge
    and the ``repro_pool_breaker_opens_total`` counter, both labeled
    ``replica=<name>``.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        name: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._opens = 0
        self._export()

    # -- state ----------------------------------------------------------

    def _export(self) -> None:
        if self.name is None:
            return
        _metrics.gauge(
            "repro_pool_breaker_state",
            help="replica breaker state (0 closed, 1 half-open, 2 open)",
            replica=self.name,
        ).set(_STATE_VALUES[self._state])

    def _tick(self) -> None:
        """Lazy open → half-open transition (caller holds the lock)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._probing = False
            self._export()

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    @property
    def opens(self) -> int:
        """Times this breaker has opened (including probe re-opens)."""
        return self._opens

    def allow(self) -> bool:
        """May one request be sent now? Half-open admits a single probe."""
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False
            self._export()

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            if self._state == OPEN:
                # A straggler (e.g. a losing hedge) reporting after the
                # breaker already opened adds no information.
                return
            self._failures += 1
            self._probing = False
            if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._opens += 1
                if self.name is not None:
                    _metrics.counter(
                        "repro_pool_breaker_opens_total",
                        help="replica breaker open transitions",
                        replica=self.name,
                    ).inc()
                self._export()


class _Replica:
    __slots__ = ("client", "name", "breaker")

    def __init__(self, client: Client, breaker: CircuitBreaker) -> None:
        self.client = client
        self.name = client.base_url
        self.breaker = breaker


class ReplicaSet:
    """Failover client over an ordered list of exploration servers.

    Drop-in for :class:`~repro.serve.client.Client` wherever a
    ``RemoteEvaluator`` needs a transport: it exposes the same
    :meth:`evaluate` signature and raises the same exception taxonomy,
    plus :meth:`try_recover` so a degraded evaluator can return to
    served evaluation once a replica probe succeeds.

    Args:
        servers: URLs (or prebuilt :class:`Client` instances), in
            preference order. The first healthy replica serves.
        timeout/retries/backoff/rng: Per-replica transport knobs (see
            :class:`Client`); ``retries`` defaults low (1) because
            failover, not in-place retry, is this layer's answer to a
            sick replica.
        deadline: Wall-clock budget per request covering *every* replica
            tried, propagated as the remaining budget on each hop.
        failure_threshold/cooldown: Breaker tuning (see
            :class:`CircuitBreaker`).
        hedge_after: Seconds a replica may stay silent before the next
            healthy replica is raced against it (``None`` disables
            hedging).
        probe_timeout: Socket timeout of ``/readyz`` health probes.
        clock: Injectable monotonic clock shared with the breakers.
    """

    def __init__(
        self,
        servers: Sequence[Union[str, Client]],
        *,
        timeout: float = 30.0,
        retries: int = 1,
        deadline: Optional[float] = None,
        backoff: Optional[Backoff] = None,
        rng=None,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        hedge_after: Optional[float] = None,
        probe_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not servers:
            raise ValueError("ReplicaSet needs at least one server URL")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if hedge_after is not None and hedge_after <= 0:
            raise ValueError(f"hedge_after must be positive, got {hedge_after}")
        if probe_timeout <= 0:
            raise ValueError(f"probe_timeout must be positive, got {probe_timeout}")
        clients = [
            server if isinstance(server, Client) else Client(
                server,
                timeout=timeout,
                retries=retries,
                backoff=backoff if backoff is not None else Backoff(base=0.05, cap=1.0),
                rng=rng,
            )
            for server in servers
        ]
        seen = set()
        for client in clients:
            if client.base_url in seen:
                raise ValueError(
                    f"duplicate replica {client.base_url!r}; each replica "
                    "must be a distinct server"
                )
            seen.add(client.base_url)
        self.deadline = deadline
        self.hedge_after = hedge_after
        self.probe_timeout = probe_timeout
        self._clock = clock
        self._replicas = [
            _Replica(
                client,
                CircuitBreaker(
                    failure_threshold=failure_threshold,
                    cooldown=cooldown,
                    name=client.base_url,
                    clock=clock,
                ),
            )
            for client in clients
        ]

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._replicas)

    @property
    def names(self) -> List[str]:
        return [replica.name for replica in self._replicas]

    def states(self) -> Dict[str, str]:
        """Current breaker state per replica URL."""
        return {replica.name: replica.breaker.state for replica in self._replicas}

    def breaker(self, name: str) -> CircuitBreaker:
        for replica in self._replicas:
            if replica.name == name:
                return replica.breaker
        raise KeyError(name)

    # -- API ------------------------------------------------------------

    def evaluate(
        self,
        kernel: str,
        width: int,
        points: Sequence[Dict[str, object]],
        engine: str = "compiled",
        deadline: Optional[float] = None,
    ) -> Tuple[List[Evaluation], Dict[str, int]]:
        """Evaluate ``points`` on the first replica that answers.

        Walks replicas healthiest-first (closed breakers in configured
        order, then half-open probes), failing over on any retryable
        failure with the remaining deadline propagated. Raises
        :class:`AllReplicasUnavailable` when the fleet is down and
        :class:`~repro.serve.client.RequestError` immediately on a
        terminal 4xx.
        """
        budget = deadline if deadline is not None else self.deadline
        cutoff = None if budget is None else self._clock() + budget

        def call(replica: _Replica, remaining: Optional[float]):
            return replica.client.evaluate(
                kernel, width, points, engine=engine, deadline=remaining
            )

        return self._route(call, cutoff)

    def try_recover(self) -> bool:
        """True when some replica can take traffic again.

        Immediately true while any breaker is closed. Otherwise each
        half-open breaker (cooldown elapsed) gets one ``/readyz`` probe:
        the first success closes that breaker and returns True; failures
        re-open theirs. While every breaker is open and cooling down,
        returns False without any network traffic — this is what makes
        polling it every batch cheap for a degraded evaluator.
        """
        for replica in self._replicas:
            if replica.breaker.state == CLOSED:
                return True
        for replica in self._replicas:
            if replica.breaker.state == HALF_OPEN and replica.breaker.allow():
                if self._probe(replica):
                    return True
        return False

    # -- routing --------------------------------------------------------

    def _ordered(self) -> List[_Replica]:
        """Replicas healthiest-first: closed breakers keep config order,
        half-open (probe candidates) follow, open ones are skipped by
        ``allow()`` anyway."""
        ranked = sorted(
            range(len(self._replicas)),
            key=lambda i: (
                0 if self._replicas[i].breaker.state == CLOSED else 1,
                i,
            ),
        )
        return [self._replicas[i] for i in ranked]

    def _route(self, call, cutoff: Optional[float]):
        last: Optional[ServeError] = None
        used: set = set()
        first_attempt = True
        for replica in self._ordered():
            if replica.name in used:
                continue
            if not replica.breaker.allow():
                continue
            if cutoff is not None and cutoff - self._clock() <= 0:
                raise AllReplicasUnavailable(
                    f"deadline exhausted before the fleet answered; "
                    f"last failure: {last}"
                ) from last
            if not first_attempt:
                _metrics.counter(
                    "repro_pool_failovers_total",
                    help="requests moved to another replica after a failure",
                ).inc()
            first_attempt = False
            hedge = (
                self._hedge_candidate(replica, used)
                if self.hedge_after is not None
                else None
            )
            try:
                if hedge is None:
                    return self._single(replica, call, cutoff)
                return self._hedged(replica, hedge, call, cutoff, used)
            except RequestError:
                raise  # terminal everywhere: the request itself is bad
            except ServeError as exc:
                last = exc
                used.add(replica.name)
                continue
        states = ", ".join(f"{n}={s}" for n, s in self.states().items())
        raise AllReplicasUnavailable(
            f"no replica available ({states}); last failure: {last}"
        ) from last

    def _single(self, replica: _Replica, call, cutoff: Optional[float]):
        remaining: Optional[float] = None
        if cutoff is not None:
            remaining = cutoff - self._clock()
            if remaining <= 0:
                raise AllReplicasUnavailable("deadline exhausted")
        try:
            value = call(replica, remaining)
        except RequestError:
            # The replica answered; the request is the problem.
            replica.breaker.record_success()
            raise
        except ServeError:
            replica.breaker.record_failure()
            raise
        replica.breaker.record_success()
        return value

    def _hedge_candidate(
        self, primary: _Replica, used: set
    ) -> Optional[_Replica]:
        for replica in self._replicas:
            if replica is primary or replica.name in used:
                continue
            if replica.breaker.state == CLOSED:
                return replica
        return None

    def _hedged(
        self, primary: _Replica, hedge: _Replica, call,
        cutoff: Optional[float], used: set,
    ):
        """Race ``primary`` against ``hedge`` after ``hedge_after`` of
        silence; first success wins. Both replicas share one store, so
        the lease protocol arbitrates any duplicated simulation."""
        results: "queue.Queue[Tuple[_Replica, object, Optional[BaseException]]]" = (
            queue.Queue()
        )

        def run(replica: _Replica) -> None:
            try:
                results.put((replica, self._single(replica, call, cutoff), None))
            except BaseException as exc:  # noqa: BLE001 — relayed below
                results.put((replica, None, exc))

        threading.Thread(
            target=run, args=(primary,), daemon=True,
            name=f"repro-hedge-{primary.name}",
        ).start()
        pending = 1
        hedged = False
        failures: List[Tuple[_Replica, BaseException]] = []
        while pending:
            timeout = None if hedged else self.hedge_after
            try:
                replica, value, exc = results.get(timeout=timeout)
            except queue.Empty:
                # Primary is slow: launch the hedge (once) and keep
                # waiting for whichever answers first.
                hedged = True
                if hedge.breaker.allow():
                    _metrics.counter(
                        "repro_pool_hedges_total",
                        help="hedged (raced) requests launched",
                    ).inc()
                    threading.Thread(
                        target=run, args=(hedge,), daemon=True,
                        name=f"repro-hedge-{hedge.name}",
                    ).start()
                    pending += 1
                continue
            pending -= 1
            if exc is None:
                if replica is hedge:
                    _metrics.counter(
                        "repro_pool_hedge_wins_total",
                        help="hedged requests won by the hedge replica",
                    ).inc()
                return value
            if isinstance(exc, RequestError):
                raise exc
            if isinstance(exc, ServeError):
                failures.append((replica, exc))
                continue
            raise exc
        for replica, _ in failures:
            used.add(replica.name)
        raise failures[-1][1]

    # -- probing --------------------------------------------------------

    def _probe(self, replica: _Replica) -> bool:
        ok = replica.client.probe(timeout=self.probe_timeout)
        _metrics.counter(
            "repro_pool_probes_total",
            help="half-open breaker probes by replica and outcome",
            replica=replica.name,
            outcome="success" if ok else "failure",
        ).inc()
        if ok:
            replica.breaker.record_success()
        else:
            replica.breaker.record_failure()
        return ok
