"""repro.serve — the design space as a crash-tolerant network service.

The ROADMAP's "many evaluators, one store" story, completed over HTTP:
``repro serve`` exposes warm :class:`~repro.explore.evaluator.Evaluator`
instances behind a stdlib ``ThreadingHTTPServer``
(:class:`ExploreServer` / :class:`ExploreService`), and
:class:`Client` / :class:`RemoteEvaluator` let any exploration run
against it — with per-request deadlines, full-jitter retry, 429
backpressure handling, and graceful degradation to local evaluation
when the server stays unreachable. Served and local evaluations are
bit-identical; the shared content-addressed store plus the lease
protocol keep N clients from ever simulating the same point twice.

A fleet of replicas is one step up: point N ``repro serve`` processes
at one ``--cache-dir`` and hand :class:`ReplicaSet` the URL list — it
adds per-replica circuit breakers, failover with deadline propagation,
optional hedged requests, and ``/readyz`` probes that un-degrade a
fallen-back exploration when a replica returns
(:mod:`repro.serve.pool`). On the server side, single-flight
coalescing shares one evaluation per canonical point across concurrent
overlapping requests.

Replica-set quickstart::

    # terminals 1 and 2 (one shared store)
    python -m repro serve --port 8642 --cache-dir .repro_cache
    python -m repro serve --port 8643 --cache-dir .repro_cache

    # terminal 3: failover client over both replicas
    python -m repro explore qcla-32 \\
        --server http://127.0.0.1:8642 --server http://127.0.0.1:8643

See the README "Serving" section for the endpoint table and the
failure-mode matrix.
"""

from repro.serve.client import (
    Client,
    RemoteEvaluator,
    RequestError,
    ServeError,
    ServerOverloaded,
    ServerUnavailable,
    TransportError,
)
from repro.serve.pool import (
    AllReplicasUnavailable,
    CircuitBreaker,
    ReplicaSet,
)
from repro.serve.protocol import (
    EVALUATE_PATH,
    HEALTH_PATH,
    METRICS_PATH,
    READY_PATH,
    ProtocolError,
)
from repro.serve.server import ExploreServer, ExploreService

__all__ = [
    "AllReplicasUnavailable",
    "CircuitBreaker",
    "Client",
    "ExploreServer",
    "ExploreService",
    "ReplicaSet",
    "EVALUATE_PATH",
    "HEALTH_PATH",
    "METRICS_PATH",
    "READY_PATH",
    "ProtocolError",
    "RemoteEvaluator",
    "RequestError",
    "ServeError",
    "ServerOverloaded",
    "ServerUnavailable",
    "TransportError",
]
