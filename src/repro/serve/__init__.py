"""repro.serve — the design space as a crash-tolerant network service.

The ROADMAP's "many evaluators, one store" story, completed over HTTP:
``repro serve`` exposes warm :class:`~repro.explore.evaluator.Evaluator`
instances behind a stdlib ``ThreadingHTTPServer``
(:class:`ExploreServer` / :class:`ExploreService`), and
:class:`Client` / :class:`RemoteEvaluator` let any exploration run
against it — with per-request deadlines, full-jitter retry, 429
backpressure handling, and graceful degradation to local evaluation
when the server stays unreachable. Served and local evaluations are
bit-identical; the shared content-addressed store plus the lease
protocol keep N clients from ever simulating the same point twice.

Two-terminal quickstart::

    # terminal 1
    python -m repro serve --port 8642

    # terminal 2
    python -m repro explore qcla-32 --server http://127.0.0.1:8642

See the README "Serving" section for the endpoint table and the
failure-mode matrix.
"""

from repro.serve.client import (
    Client,
    RemoteEvaluator,
    RequestError,
    ServeError,
    ServerOverloaded,
    ServerUnavailable,
    TransportError,
)
from repro.serve.protocol import (
    EVALUATE_PATH,
    HEALTH_PATH,
    METRICS_PATH,
    READY_PATH,
    ProtocolError,
)
from repro.serve.server import ExploreServer, ExploreService

__all__ = [
    "Client",
    "ExploreServer",
    "ExploreService",
    "EVALUATE_PATH",
    "HEALTH_PATH",
    "METRICS_PATH",
    "READY_PATH",
    "ProtocolError",
    "RemoteEvaluator",
    "RequestError",
    "ServeError",
    "ServerOverloaded",
    "ServerUnavailable",
    "TransportError",
]
