"""The exploration server: warm evaluators behind a ThreadingHTTPServer.

Stdlib only. One :class:`ExploreService` owns a shared
:class:`~repro.explore.store.ResultStore` and a warm
:class:`~repro.explore.evaluator.Evaluator` per ``(kernel, width,
engine)`` — the kernel is analyzed and compiled once, then every
request against it reuses the hot state, so cache-hit batches answer
with zero simulation. The HTTP front-end
(:class:`ExploreServer`) is deliberately thin:

* ``POST /evaluate`` — a design-point batch in, evaluations plus the
  evaluator's counter deltas out (:mod:`repro.serve.protocol`);
* ``GET /healthz`` — liveness (200 while the process can answer);
* ``GET /readyz`` — readiness: 503 while draining, else 200 with the
  in-flight/queue depth;
* ``GET /metrics`` — the process-wide :mod:`repro.obs` registry as
  Prometheus text.

Robustness is the design center:

* **Backpressure, not OOM.** Admission control bounds concurrently
  admitted ``/evaluate`` requests (working + queued) at ``max_queue``;
  the excess is shed immediately with ``429 Too Many Requests`` and a
  ``Retry-After`` hint instead of being buffered without bound.
  Admitted requests serialize on the service's work lock — the
  evaluator itself fans out across its worker processes.
* **Graceful shutdown.** :meth:`ExploreServer.shutdown` flips the
  service into draining (readyz 503, new evaluate requests 503),
  waits for in-flight evaluations to land — their results are
  persisted and their leases released by the evaluator's own batch
  teardown — then force-releases any lease still held and stops the
  listener. A ``kill -9`` instead of a drain leaves leases behind by
  construction; peers reclaim them after the lease TTL.
* **Single-flight coalescing.** Concurrent ``/evaluate`` requests
  whose canonical point sets overlap share one simulation pass per
  point: the first request to claim a point becomes its *owner*, and
  followers wait on the owner's flight instead of queuing a redundant
  evaluation behind the work lock. Bit-identical either way (the store
  would have deduplicated too — coalescing removes the wait, not just
  the work); ``--no-coalesce`` turns it off.
* **Injectable failures.** The handler announces the
  ``serve_request`` / ``serve_response`` / ``serve_probe`` fault
  stages (:mod:`repro.testing.faults`), scoped to this process's
  ``replica_id``, so the whole client failure matrix — connection
  refused, response hang, torn body, 5xx burst, a flapping or
  SIGKILL'd fleet member — is exercised by the same harness that
  crash-tests pool workers.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.explore.evaluator import Evaluation, Evaluator
from repro.explore.store import DEFAULT_LEASE_TTL, ResultStore
from repro.obs import metrics as _metrics
from repro.obs.metrics import REQUEST_SECONDS_EDGES
from repro.obs.trace import span as _span
from repro.serve import protocol
from repro.testing import faults

#: Seconds a shedding response suggests the client wait before retrying.
RETRY_AFTER_SECONDS = 1.0


class _Flight:
    """One in-flight simulation pass for a single canonical point.

    The owning request sets :attr:`result` (or leaves it ``None`` on
    failure) and then :attr:`done`; follower requests wait on
    :attr:`done` instead of re-simulating the point.
    """

    __slots__ = ("done", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[Evaluation] = None


def _count_request(route: str, status: int) -> None:
    _metrics.counter(
        "repro_serve_requests_total",
        help="exploration-server requests by route and status",
        route=route,
        status=str(status),
    ).inc()


class ExploreService:
    """Evaluation backend shared by every request-handler thread.

    Args:
        store: Shared result store (``None`` disables persistence and
            lease coordination — every request simulates).
        engine: Dataflow engine for the warm evaluators.
        workers: Worker processes per evaluator (see :class:`Evaluator`).
        retries: Per-point retry budget forwarded to the evaluators.
        timeout: Per-chunk evaluation timeout forwarded to the evaluators.
        heartbeat_interval: Lease heartbeat interval forwarded to the
            evaluators (must be < the store's ``lease_ttl``).
        max_queue: Most ``/evaluate`` requests admitted at once
            (the one being worked plus the ones queued behind it);
            requests beyond it are shed with 429.
        coalesce: Single-flight concurrent requests whose canonical
            point sets overlap (one simulation pass per point; the
            default). ``False`` restores strict per-request evaluation.
        replica_id: Identity of this serving process in a replica
            fleet; matched against replica-scoped fault rules
            (``repro serve --replica-id``). ``None`` matches only
            unscoped rules.
    """

    def __init__(
        self,
        *,
        store: Optional[ResultStore] = None,
        engine: str = "compiled",
        workers: Optional[int] = None,
        retries: int = 2,
        timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        max_queue: int = 8,
        coalesce: bool = True,
        replica_id: Optional[str] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.store = store
        self._engine = engine
        self._workers = workers
        self._retries = retries
        self._timeout = timeout
        self._heartbeat_interval = heartbeat_interval
        self.max_queue = max_queue
        self.coalesce = coalesce
        self.replica_id = replica_id
        self._evaluators: Dict[Tuple[str, int, str], Evaluator] = {}
        self._evaluators_lock = threading.Lock()
        self._work_lock = threading.Lock()
        self._admission = threading.Condition()
        self._inflight = 0
        self._draining = False
        self._flights: Dict[Tuple[str, int, str, str], _Flight] = {}
        self._flights_lock = threading.Lock()
        _metrics.counter(
            "repro_serve_shed_total",
            help="evaluate requests shed with 429 (queue full)",
        )
        _metrics.counter(
            "repro_serve_coalesced_total",
            help="points answered from another request's in-flight evaluation",
        )

    # -- admission ------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def admit(self) -> str:
        """Try to admit one ``/evaluate`` request.

        Returns ``"ok"`` (caller must pair with :meth:`finish`),
        ``"draining"`` (shutting down) or ``"overloaded"`` (queue full —
        shed with 429).
        """
        with self._admission:
            if self._draining:
                return "draining"
            if self._inflight >= self.max_queue:
                _metrics.counter("repro_serve_shed_total").inc()
                return "overloaded"
            self._inflight += 1
            _metrics.gauge(
                "repro_serve_inflight",
                help="admitted evaluate requests currently in flight",
            ).set(self._inflight)
            return "ok"

    def finish(self) -> None:
        with self._admission:
            self._inflight -= 1
            _metrics.gauge("repro_serve_inflight").set(self._inflight)
            self._admission.notify_all()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop admitting work and wait for in-flight requests to land.

        Returns True when the service fully drained within ``timeout``.
        Any lease still held afterwards (a drain timeout cut an
        evaluation short) is force-released so peers need not wait out
        the TTL.
        """
        with self._admission:
            self._draining = True
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._admission.wait(timeout=remaining)
            drained = self._inflight == 0
        for evaluator in self._evaluators.values():
            evaluator.release_leases()
        return drained

    # -- evaluation -----------------------------------------------------

    def evaluator_for(self, kernel: str, width: int, engine: str) -> Evaluator:
        """The warm evaluator for one kernel spec (created on first use)."""
        key = (kernel, width, engine)
        with self._evaluators_lock:
            evaluator = self._evaluators.get(key)
            if evaluator is None:
                evaluator = Evaluator(
                    kernel=kernel,
                    width=width,
                    engine=engine,
                    workers=self._workers,
                    store=self.store,
                    retries=self._retries,
                    timeout=self._timeout,
                    heartbeat_interval=self._heartbeat_interval,
                )
                self._evaluators[key] = evaluator
            return evaluator

    def evaluate(
        self, kernel: str, width: int, engine: str,
        points: Sequence[Dict[str, object]],
    ) -> Tuple[List[Evaluation], Dict[str, int]]:
        """Evaluate one admitted batch; returns (evaluations, stat deltas).

        With coalescing on (the default), points already owned by a
        concurrent request's flight are answered from that flight; only
        the remainder is simulated here. Either way the simulation
        itself serializes on the work lock (one warm evaluator works at
        a time; it parallelizes internally across worker processes).
        """
        if not self.coalesce:
            return self._evaluate_serialized(kernel, width, engine, points)
        return self._evaluate_coalesced(kernel, width, engine, points)

    def _evaluate_serialized(
        self, kernel: str, width: int, engine: str,
        points: Sequence[Dict[str, object]],
    ) -> Tuple[List[Evaluation], Dict[str, int]]:
        with self._work_lock:
            evaluator = self.evaluator_for(kernel, width, engine)
            before = evaluator.stats()
            with _span("serve.evaluate", points=len(points)):
                evaluations = evaluator.evaluate(points)
            after = evaluator.stats()
            delta = {name: after[name] - before[name] for name in after}
            return evaluations, delta

    def _evaluate_coalesced(
        self, kernel: str, width: int, engine: str,
        points: Sequence[Dict[str, object]],
    ) -> Tuple[List[Evaluation], Dict[str, int]]:
        """Single-flight evaluation: one simulation pass per canonical
        point across all concurrent requests.

        The first request to see a canonical key registers a
        :class:`_Flight` and *owns* that point: it simulates it (with
        everything else it owns, in one serialized pass) and publishes
        the result. Requests that arrive while the flight is open
        *follow* it — they wait on the flight's event without touching
        the work lock, so an overlapping batch costs a wait, not a
        redundant queue slot. A follower whose owner failed re-enters
        here for the stray points and becomes their owner.
        """
        evaluator = self.evaluator_for(kernel, width, engine)
        spec = (kernel, width, engine)
        # May raise ValueError on a malformed point: the caller's 400.
        keys = [evaluator.canonical_key(point) for point in points]

        owned_keys: Dict[str, int] = {}  # canonical key -> first index
        followed: Dict[str, _Flight] = {}
        with self._flights_lock:
            for index, key in enumerate(keys):
                if key in owned_keys or key in followed:
                    continue  # batch-internal duplicate: one flight covers it
                flight = self._flights.get(spec + (key,))
                if flight is not None:
                    followed[key] = flight
                else:
                    self._flights[spec + (key,)] = _Flight()
                    owned_keys[key] = index

        results: Dict[str, Evaluation] = {}
        # Zero-filled so a pure-follower request still reports every
        # counter (with simulations_run == 0, which is the point).
        delta: Dict[str, int] = {name: 0 for name in evaluator.stats()}
        try:
            if owned_keys:
                owned_points = [points[i] for i in owned_keys.values()]
                evaluations, owned_delta = self._evaluate_serialized(
                    kernel, width, engine, owned_points
                )
                for name, value in owned_delta.items():
                    delta[name] = delta.get(name, 0) + value
                for key, evaluation in zip(owned_keys, evaluations):
                    results[key] = evaluation
        finally:
            # Publish before waiting on anyone else's flight (failure
            # publishes result=None), so two requests that own points
            # from each other's batches can never deadlock.
            with self._flights_lock:
                for key in owned_keys:
                    flight = self._flights.pop(spec + (key,), None)
                    if flight is not None:
                        flight.result = results.get(key)
                        flight.done.set()

        coalesced = 0
        for key, flight in followed.items():
            flight.done.wait()
            if flight.result is not None:
                results[key] = flight.result
                coalesced += 1
            # else: the owner failed; fall through to stray recovery
        if coalesced:
            _metrics.counter("repro_serve_coalesced_total").inc(coalesced)

        stray: Dict[str, int] = {}
        for index, key in enumerate(keys):
            if key not in results and key not in stray:
                stray[key] = index
        if stray:
            # The failed flights are gone from the table, so this
            # recursion claims ownership and actually evaluates (or
            # raises the owner's error as our own).
            stray_evals, stray_delta = self._evaluate_coalesced(
                kernel, width, engine, [points[i] for i in stray.values()]
            )
            for key, evaluation in zip(stray, stray_evals):
                results[key] = evaluation
            for name, value in stray_delta.items():
                delta[name] = delta.get(name, 0) + value

        if coalesced:
            delta["coalesced_points"] = delta.get("coalesced_points", 0) + coalesced
        return [results[key] for key in keys], delta


class _Handler(BaseHTTPRequestHandler):
    """One request; the class is bound to a service by ExploreServer."""

    service: ExploreService  # injected via subclass attribute
    timeout = 60.0  # socket timeout: a stalled peer can't wedge a thread
    server_version = "repro-serve/1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is metrics' job; stderr stays quiet

    def _send(
        self, status: int, body: bytes, content_type: str = protocol.CONTENT_TYPE_JSON,
        extra_headers: Optional[Dict[str, str]] = None,
        declared_length: Optional[int] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header(
            "Content-Length", str(len(body) if declared_length is None else declared_length)
        )
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _refuse(self) -> None:
        """Sever the connection without an HTTP response (refuse fault)."""
        import socket as _socket

        try:
            self.request.shutdown(_socket.SHUT_RDWR)
        except OSError:
            pass
        self.close_connection = True

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0]
        if route == protocol.HEALTH_PATH:
            self._send(200, b'{"status":"ok"}\n')
            _count_request(route, 200)
        elif route == protocol.READY_PATH:
            try:
                faults.check("serve_probe", None, self.service.replica_id)
            except faults.Refused:
                self._refuse()
                return
            except Exception as exc:
                self._send(503, protocol.encode_error(
                    f"{type(exc).__name__}: {exc}"
                ))
                _count_request(route, 503)
                return
            if self.service.draining:
                self._send(503, protocol.encode_error("draining"))
                _count_request(route, 503)
            else:
                body = (
                    '{"status":"ready","inflight":%d,"max_queue":%d}\n'
                    % (self.service.inflight, self.service.max_queue)
                ).encode("utf-8")
                self._send(200, body)
                _count_request(route, 200)
        elif route == protocol.METRICS_PATH:
            body = _metrics.prometheus().encode("utf-8")
            self._send(200, body, content_type=protocol.CONTENT_TYPE_METRICS)
            _count_request(route, 200)
        else:
            self._send(404, protocol.encode_error(f"no such route: {route}"))
            _count_request("other", 404)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0]
        if route != protocol.EVALUATE_PATH:
            self._send(404, protocol.encode_error(f"no such route: {route}"))
            _count_request("other", 404)
            return
        t0 = time.perf_counter()
        status = self._evaluate()
        _metrics.REGISTRY.histogram(
            "repro_serve_request_seconds",
            REQUEST_SECONDS_EDGES,
            help="evaluate-request latency (seconds)",
        ).observe(time.perf_counter() - t0)
        if status is not None:
            _count_request(route, status)

    def _evaluate(self) -> Optional[int]:
        """Handle one /evaluate request; returns the status sent (None
        when the connection was severed without a response)."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self._send(411, protocol.encode_error("Content-Length required"))
            return 411
        if length > protocol.MAX_REQUEST_BYTES:
            self._send(413, protocol.encode_error(
                f"request too large ({length} bytes)"
            ))
            return 413
        try:
            body = self.rfile.read(length)
            request = protocol.decode_request(body)
        except protocol.ProtocolError as exc:
            self._send(400, protocol.encode_error(str(exc)))
            return 400
        except OSError:
            return None  # client went away mid-body; nothing to answer
        point0 = request["points"][0] if request["points"] else None
        try:
            faults.check("serve_request", point0, self.service.replica_id)
        except faults.Refused:
            self._refuse()
            return None
        except Exception as exc:
            self._send(500, protocol.encode_error(
                f"{type(exc).__name__}: {exc}"
            ))
            return 500

        slot = self.service.admit()
        if slot == "draining":
            self._send(503, protocol.encode_error("server is draining"),
                       extra_headers={"Retry-After": "5"})
            return 503
        if slot == "overloaded":
            self._send(
                429,
                protocol.encode_error(
                    f"work queue full ({self.service.max_queue} in flight); "
                    "retry later"
                ),
                extra_headers={"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
            )
            return 429
        try:
            evaluations, stats = self.service.evaluate(
                request["kernel"], request["width"], request["engine"],
                request["points"],
            )
            payload = protocol.encode_response(evaluations, stats)
        except ValueError as exc:
            # Bad spec (unknown kernel/dimension): the client's fault.
            self._send(400, protocol.encode_error(str(exc)))
            return 400
        except Exception as exc:
            self._send(500, protocol.encode_error(
                f"{type(exc).__name__}: {exc}"
            ))
            return 500
        finally:
            self.service.finish()
        try:
            faults.check("serve_response", point0, self.service.replica_id)
        except faults.Refused:
            self._refuse()
            return None
        # A torn-response fault truncates the bytes on the wire while the
        # declared Content-Length still promises the full body — exactly
        # what a connection cut mid-flight looks like to the client.
        sent = faults.mangle(
            "serve_response", point0, payload.decode("utf-8"),
            self.service.replica_id,
        )
        self._send(
            200, sent.encode("utf-8"), declared_length=len(payload)
        )
        if len(sent.encode("utf-8")) != len(payload):
            self.close_connection = True
        return 200


class ExploreServer:
    """The HTTP listener around an :class:`ExploreService`.

    Binds immediately (``port=0`` picks a free port — see
    :attr:`address`); :meth:`serve_forever` blocks, or
    :meth:`start_background` runs the accept loop in a daemon thread
    (what the tests and the in-process client harness use).
    """

    def __init__(
        self,
        service: ExploreService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolved even when ``port=0``."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._thread = thread
        return thread

    def shutdown(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Drain in-flight evaluations, then stop the listener.

        Returns True when the drain completed within ``drain_timeout``
        (leases are force-released either way).
        """
        drained = self.service.drain(drain_timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return drained
