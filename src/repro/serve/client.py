"""The exploration-service client: retrying transport, degrading facade.

Two layers:

* :class:`Client` — a stdlib-only (``http.client``) HTTP client for one
  server. Every request carries a **per-attempt timeout** and an
  optional **per-request deadline** (wall-clock budget covering all
  attempts and the sleeps between them). Failures are classified:

  - *retryable* — connection refused/reset, timeouts, torn bodies
    (``IncompleteRead`` or undecodable JSON), any 5xx: retried up to
    ``retries`` times with full-jitter exponential backoff
    (:class:`repro.util.backoff.Backoff`);
  - *backpressure* — 429: the server shed the request; the client
    honors the ``Retry-After`` hint instead of its own backoff and the
    wait does not burn a retry (bounded by the deadline, so shedding
    can never hang a capped request forever);
  - *terminal* — any other 4xx (a malformed request is a bug, not
    weather): raised immediately as :class:`RequestError`.

  When the budget is exhausted the last failure is wrapped in
  :class:`ServerUnavailable` — the one exception callers need to
  handle.

* :class:`RemoteEvaluator` — an :class:`~repro.explore.evaluator.Evaluator`-
  compatible facade over a :class:`Client` plus a **local fallback
  evaluator against the same result store**. While the server answers,
  batches are served remotely (the server's counter deltas keep
  simulation/cache accounting exact); the first
  :class:`ServerUnavailable` flips the facade into degraded mode — a
  :class:`~repro.explore.errors.ServeDegradedWarning` is emitted and
  every batch from then on evaluates locally. Results are bit-identical
  either way, so an exploration driven through a server that dies
  mid-run completes with exactly the evaluations a cold local run
  produces.
"""

from __future__ import annotations

import datetime
import email.utils
import http.client
import json
import socket
import time
import urllib.parse
import warnings
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.explore.errors import ServeDegradedWarning, ServeRecoveredWarning
from repro.explore.evaluator import Evaluation, Evaluator
from repro.explore.store import ResultStore
from repro.obs import metrics as _metrics
from repro.serve import protocol
from repro.util.backoff import Backoff


class ServeError(Exception):
    """Base of the client-side failure taxonomy."""


class RequestError(ServeError):
    """The server rejected the request as malformed (4xx; not retried)."""

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status


class ServerOverloaded(ServeError):
    """The server shed the request (429); retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TransportError(ServeError):
    """A retryable transport failure (refused, reset, timeout, 5xx, torn)."""


class ServerUnavailable(ServeError):
    """The retry budget (or deadline) ran out; carries the last failure."""


def _retry_after(headers, default: float = 1.0) -> float:
    """Seconds to wait per a ``Retry-After`` header.

    RFC 7231 allows both forms: delta-seconds (``"2"``) and an HTTP-date
    (``"Fri, 08 Aug 2026 12:00:00 GMT"``). Dates are converted to a
    non-negative delay against the current wall clock; anything
    unparseable falls back to ``default``.
    """
    raw = headers.get("Retry-After")
    if raw is None:
        return default
    try:
        return max(0.0, float(raw))
    except (TypeError, ValueError):
        pass
    try:
        parsed = email.utils.parsedate_to_datetime(str(raw))
    except (TypeError, ValueError):
        return default
    if parsed is None:
        return default
    if parsed.tzinfo is None:  # RFC 7231 dates are GMT
        parsed = parsed.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    return max(0.0, (parsed - now).total_seconds())


class Client:
    """HTTP client for one exploration server.

    Args:
        base_url: e.g. ``http://127.0.0.1:8642``.
        timeout: Per-attempt socket timeout in seconds (connect + read).
        retries: Retryable failures tolerated per request *after* the
            first attempt; ``0`` means fail on the first error.
        deadline: Optional per-request wall-clock budget in seconds
            covering every attempt and backoff sleep.
        backoff: Retry delay policy (default: full jitter, 50 ms base,
            2 s cap).
        rng: Deterministic jitter source for tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retries: int = 5,
        deadline: Optional[float] = None,
        backoff: Optional[Backoff] = None,
        rng: Optional[Random] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url
                                       else f"http://{base_url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// servers are supported, got {base_url!r}")
        if not parsed.hostname:
            raise ValueError(f"bad server URL {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.timeout = timeout
        self.retries = retries
        self.deadline = deadline
        self.backoff = backoff if backoff is not None else Backoff(base=0.05, cap=2.0)
        self._rng = rng

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ------------------------------------------------------

    def _attempt(
        self, method: str, path: str, body: Optional[bytes], timeout: float
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One HTTP attempt; transport failures raise TransportError."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            headers = {"Content-Type": protocol.CONTENT_TYPE_JSON} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, payload, dict(response.getheaders())
        except http.client.IncompleteRead as exc:
            raise TransportError(f"torn response body: {exc}") from exc
        except (ConnectionError, http.client.HTTPException) as exc:
            # refused / reset / closed-before-status-line
            raise TransportError(f"{type(exc).__name__}: {exc}") from exc
        except (socket.timeout, TimeoutError) as exc:
            raise TransportError(f"timed out after {timeout:.3g}s") from exc
        except OSError as exc:
            raise TransportError(f"{type(exc).__name__}: {exc}") from exc
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """``method path`` with retry/backoff/deadline; returns a 2xx.

        ``deadline`` (seconds, overriding the client default) caps the
        whole exchange. Raises :class:`RequestError` on terminal 4xx and
        :class:`ServerUnavailable` once the budget is exhausted.
        """
        budget = deadline if deadline is not None else self.deadline
        cutoff = None if budget is None else time.monotonic() + budget
        attempt = 0
        failures = 0
        last: Optional[ServeError] = None
        while True:
            attempt += 1
            per_attempt = self.timeout
            if cutoff is not None:
                remaining = cutoff - time.monotonic()
                if remaining <= 0:
                    raise ServerUnavailable(
                        f"deadline ({budget:g}s) exhausted after "
                        f"{attempt - 1} attempt(s); last failure: {last}"
                    ) from last
                per_attempt = min(per_attempt, remaining)
            try:
                status, payload, headers = self._attempt(
                    method, path, body, per_attempt
                )
                if status == 429:
                    raise ServerOverloaded(
                        protocol.error_message(payload),
                        retry_after=_retry_after(headers),
                    )
                if status >= 500:
                    raise TransportError(
                        f"server error {status}: {protocol.error_message(payload)}"
                    )
                if status >= 400:
                    raise RequestError(
                        f"{status}: {protocol.error_message(payload)}", status
                    )
                return status, payload, headers
            except ServerOverloaded as exc:
                # Backpressure, not failure: wait what the server asked
                # (deadline-capped) without burning a retry.
                last = exc
                _metrics.counter(
                    "repro_client_backoffs_total",
                    help="client waits caused by 429 load shedding",
                ).inc()
                wait = exc.retry_after
                if cutoff is not None:
                    remaining = cutoff - time.monotonic()
                    if remaining <= 0:
                        raise ServerUnavailable(
                            f"deadline ({budget:g}s) exhausted while shed: {exc}"
                        ) from exc
                    wait = min(wait, remaining)
                time.sleep(wait)
            except TransportError as exc:
                last = exc
                failures += 1
                if failures > self.retries:
                    raise ServerUnavailable(
                        f"{self.base_url} unavailable after {failures} "
                        f"attempt(s): {exc}"
                    ) from exc
                _metrics.counter(
                    "repro_client_retries_total",
                    help="client request retries after transport failures",
                ).inc()
                self.backoff.sleep(failures, deadline=cutoff, rng=self._rng)

    # -- API ------------------------------------------------------------

    def evaluate(
        self,
        kernel: str,
        width: int,
        points: Sequence[Dict[str, object]],
        engine: str = "compiled",
        deadline: Optional[float] = None,
    ) -> Tuple[List[Evaluation], Dict[str, int]]:
        """Evaluate ``points`` remotely; returns (evaluations, stat deltas)."""
        body = protocol.encode_request(kernel, width, points, engine)
        _, payload, _ = self.request(
            "POST", protocol.EVALUATE_PATH, body=body, deadline=deadline
        )
        try:
            return protocol.decode_response(payload)
        except protocol.ProtocolError as exc:
            # A complete-but-garbled body got past the transport layer;
            # surface it as unavailability rather than bad data.
            raise ServerUnavailable(f"undecodable response: {exc}") from exc

    def health(self) -> bool:
        try:
            status, _, _ = self.request("GET", protocol.HEALTH_PATH)
            return status == 200
        except ServeError:
            return False

    def ready(self) -> bool:
        try:
            status, _, _ = self.request("GET", protocol.READY_PATH)
            return status == 200
        except ServeError:
            return False

    def probe(self, timeout: Optional[float] = None) -> bool:
        """One bare ``/readyz`` attempt — no retries, no backoff.

        The health-probe primitive a :class:`~repro.serve.pool.ReplicaSet`
        sends through a half-open breaker: a single attempt answers
        "can this replica take traffic right now", which retrying would
        only blur.
        """
        try:
            status, _, _ = self._attempt(
                "GET", protocol.READY_PATH, None,
                timeout if timeout is not None else self.timeout,
            )
        except TransportError:
            return False
        return status == 200

    def metrics(self) -> str:
        """The server's Prometheus text (raises ServeError on failure)."""
        _, payload, _ = self.request("GET", protocol.METRICS_PATH)
        return payload.decode("utf-8")


class RemoteEvaluator:
    """Evaluator-compatible facade: remote first, local fallback.

    Drop-in for :func:`repro.explore.engine.explore` — it exposes the
    same ``evaluate`` / ``canonicalize`` / ``canonical_key`` / ``stats``
    surface and the ``simulations_run`` / ``cache_hits`` counters the
    engine reads. Canonicalization is always local (it is pure), so
    dedupe and journal keys never depend on the server being up.

    The degrade ladder depends on the transport. With a plain
    :class:`Client` the first :class:`ServerUnavailable` flips the
    facade into degraded mode for the rest of the run ("server died").
    With a :class:`~repro.serve.pool.ReplicaSet` — any transport with a
    ``try_recover()`` method — degradation means "fleet died": every
    replica's breaker rejected the request; before each subsequent
    batch the facade asks the transport to probe, and a successful
    ``/readyz`` probe un-degrades the run back to served evaluation.
    Degrade and recover events are mirrored into the global
    ``repro_serve_degraded_total`` / ``repro_serve_recovered_total``
    counters so fleet health is visible in ``/metrics`` and
    ``--metrics`` exports.

    Args:
        client: Transport to the exploration server — a
            :class:`Client`, or a :class:`~repro.serve.pool.ReplicaSet`
            for a fleet with failover.
        kernel/width: Kernel spec (must match what the server will
            analyze — the spec *is* the request).
        engine: Dataflow engine requested of the server and used by the
            local fallback.
        store: Local result store for the fallback evaluator; sharing it
            with the server (same cache dir) makes the fallback warm.
        workers/retries/timeout/heartbeat_interval: Fallback evaluator
            knobs (see :class:`Evaluator`).
    """

    def __init__(
        self,
        client: Client,
        *,
        kernel: str,
        width: int,
        engine: str = "compiled",
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        retries: int = 2,
        timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        self.client = client
        self._kernel = kernel
        self._width = width
        self._engine = engine
        self._local = Evaluator(
            kernel=kernel,
            width=width,
            engine=engine,
            workers=workers,
            store=store,
            retries=retries,
            timeout=timeout,
            heartbeat_interval=heartbeat_interval,
        )
        self.store = store
        self.degraded = False
        self.remote_batches = 0
        self.fallback_batches = 0
        self.recoveries = 0
        self._remote_stats: Dict[str, int] = {}

    # -- Evaluator surface ---------------------------------------------

    @property
    def simulations_run(self) -> int:
        return (
            self._remote_stats.get("simulations_run", 0)
            + self._local.simulations_run
        )

    @property
    def cache_hits(self) -> int:
        return self._remote_stats.get("cache_hits", 0) + self._local.cache_hits

    def canonicalize(self, point: Dict[str, object]) -> Dict[str, object]:
        return self._local.canonicalize(point)

    def canonical_key(self, point: Dict[str, object]) -> str:
        return self._local.canonical_key(point)

    def stats(self) -> Dict[str, int]:
        """Merged health counters (remote deltas + local fallback)."""
        merged = dict(self._local.stats())
        for name, value in self._remote_stats.items():
            merged[name] = merged.get(name, 0) + value
        merged["remote_batches"] = self.remote_batches
        merged["fallback_batches"] = self.fallback_batches
        merged["degraded"] = int(self.degraded)
        merged["recoveries"] = self.recoveries
        return merged

    def evaluate(self, points: Sequence[Dict[str, object]]) -> List[Evaluation]:
        """Evaluate ``points`` remotely, degrading to local on outage.

        An exhausted retry budget (or a fleet with every breaker open)
        flips the facade into degraded mode: a warning is emitted and
        batches — this one included — run on the local fallback
        evaluator against the configured store. A transport with
        ``try_recover()`` (a :class:`~repro.serve.pool.ReplicaSet`)
        un-degrades the facade as soon as a replica probe succeeds; a
        plain :class:`Client` stays degraded for the rest of the run.
        Either path yields bit-identical evaluations.
        """
        if self.degraded:
            self._maybe_recover()
        if not self.degraded:
            try:
                evaluations, stats = self.client.evaluate(
                    self._kernel, self._width, points, engine=self._engine
                )
                for name, value in stats.items():
                    if isinstance(value, (int, float)):
                        self._remote_stats[name] = (
                            self._remote_stats.get(name, 0) + int(value)
                        )
                self.remote_batches += 1
                return evaluations
            except ServerUnavailable as exc:
                self.degraded = True
                _metrics.counter(
                    "repro_client_fallbacks_total",
                    help="explorations degraded from served to local evaluation",
                ).inc()
                _metrics.counter(
                    "repro_serve_degraded_total",
                    help="degrade events: served evaluation fell back to local",
                ).inc()
                until = (
                    "until a replica probe succeeds"
                    if hasattr(self.client, "try_recover")
                    else "for the rest of this run"
                )
                warnings.warn(
                    f"exploration server unreachable ({exc}); degrading to "
                    f"local evaluation {until}",
                    ServeDegradedWarning,
                    stacklevel=2,
                )
        self.fallback_batches += 1
        return self._local.evaluate(points)

    def _maybe_recover(self) -> None:
        """Un-degrade when the transport reports a replica came back."""
        recover = getattr(self.client, "try_recover", None)
        if recover is None or not recover():
            return
        self.degraded = False
        self.recoveries += 1
        _metrics.counter(
            "repro_serve_recovered_total",
            help="recover events: degraded evaluation returned to served",
        ).inc()
        warnings.warn(
            "a replica probe succeeded; returning to served evaluation",
            ServeRecoveredWarning,
            stacklevel=3,
        )

    def release_leases(self) -> int:
        return self._local.release_leases()
