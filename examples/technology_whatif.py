"""What-if studies: different ion-trap assumptions (symbolic analysis).

The paper keeps its analysis symbolic so it survives technology changes
(Section 3: "we do most of our analysis in a symbolic fashion"). This
example exercises that: re-derive the factories and kernel demands under
faster gates, slower measurement, and higher error rates, and re-grade
the Figure 4c preparation quality by Monte Carlo under each error model.

Run:  python examples/technology_whatif.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 16
TRIALS = 500 if SMOKE else 20000

from repro import (
    ErrorRates,
    ION_TRAP,
    PipelinedZeroFactory,
    PrepStrategy,
    analyze_kernel,
    evaluate_strategy,
)
from repro.tech import TechnologyParams


def factory_line(name: str, tech: TechnologyParams) -> None:
    factory = PipelinedZeroFactory(tech)
    kernel = analyze_kernel("qrca", WIDTH, tech)
    print(f"  {name:<24} factory {factory.throughput_per_ms:6.1f} anc/ms in "
          f"{factory.area} mb; QRCA-{WIDTH} needs {kernel.zero_bandwidth_per_ms:6.1f}/ms "
          f"-> {factory.area_for_bandwidth(kernel.zero_bandwidth_per_ms):7.0f} mb")


def main() -> None:
    print("Factory throughput and demand under different technologies:")
    factory_line("ion trap (paper)", ION_TRAP)
    factory_line("10x faster everything", ION_TRAP.scaled(0.1))
    # Measurement is the pain point in ion traps; what if only it improved?
    fast_meas = TechnologyParams(name="fast-measure", t_meas=5.0, t_prep=6.0)
    factory_line("10x faster measurement", fast_meas)
    slow_moves = TechnologyParams(name="slow-shuttle", t_move=10.0, t_turn=100.0)
    factory_line("10x slower shuttling", slow_moves)

    print(f"\nFigure 4c output quality vs gate error rate ({TRIALS} trials each):")
    for gate_rate in (1e-4, 3e-4, 1e-3):
        errors = ErrorRates(gate=gate_rate, movement=gate_rate / 100,
                            measurement=0.0)
        report = evaluate_strategy(
            PrepStrategy.VERIFY_AND_CORRECT, trials=TRIALS, seed=7, errors=errors
        )
        print(f"  gate error {gate_rate:.0e}: uncorrectable "
              f"{report.error_rate:.2e}, discard {report.discard_rate:.2%}")

    print("\nNote how the verify-and-correct pipeline holds its output error "
          "well below the physical gate error until the error rate nears "
          "the code's threshold regime.")


if __name__ == "__main__":
    main()
