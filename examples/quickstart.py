"""Quickstart: the library in five minutes.

Builds the paper's ancilla factories, characterizes a benchmark kernel,
and prints the chip provisioning needed to run it at the speed of data.

Run:  python examples/quickstart.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 32

import repro


def main() -> None:
    # 1. The two factory designs of Section 4.4, under ion-trap latencies.
    zero_factory = repro.PipelinedZeroFactory()
    pi8_factory = repro.Pi8Factory()
    print("Pipelined encoded-zero factory:")
    print(f"  area       {zero_factory.area} macroblocks")
    print(f"  throughput {zero_factory.throughput_per_ms:.1f} encoded zeros / ms")
    print(f"  units      {zero_factory.unit_counts}")
    print("Encoded pi/8 factory:")
    print(f"  area       {pi8_factory.area} macroblocks")
    print(f"  throughput {pi8_factory.throughput_per_ms:.1f} encoded pi/8 / ms")
    print()

    # 2. Characterize the carry-lookahead adder (Section 3).
    kernel = repro.analyze_kernel("qcla", width=WIDTH)
    print(f"{kernel.name}: {kernel.total_gates} encoded gates, "
          f"{kernel.pi8_gate_count} of them pi/8-type "
          f"({kernel.non_transversal_fraction:.0%} non-transversal)")
    print(f"  speed-of-data execution: {kernel.execution_time_us / 1000:.1f} ms")
    print(f"  ancilla bandwidth:       {kernel.zero_bandwidth_per_ms:.0f} zeros/ms, "
          f"{kernel.pi8_bandwidth_per_ms:.0f} pi/8/ms")
    print()

    # 3. Provision a chip for it (Table 9).
    breakdown = repro.area_breakdown(kernel)
    print(f"Chip provisioning for {kernel.name}:")
    print(f"  data region    {breakdown.data_area:.0f} mb ({breakdown.data_fraction:.0%})")
    print(f"  QEC factories  {breakdown.qec_factory_area:.0f} mb "
          f"({breakdown.qec_factory_fraction:.0%})")
    print(f"  pi/8 factories {breakdown.pi8_factory_area:.0f} mb "
          f"({breakdown.pi8_factory_fraction:.0%})")
    print(f"  => {breakdown.ancilla_fraction:.0%} of the chip makes ancillae")
    print()

    # 4. Any reproduced table or figure is one call away.
    print(repro.run_experiment("table3"))


if __name__ == "__main__":
    main()
