"""Provisioning a chip for Shor-style workloads (Section 3.1).

The paper picks its three benchmarks because they are "core kernels of a
varied array of quantum algorithms, including Shor's factorization
algorithm". A machine running Shor interleaves modular arithmetic (built
from adders) with QFT stages, so its ancilla infrastructure must satisfy
whichever kernel is live. This example plans that chip:

1. characterize all three kernels;
2. provision factories for the *worst-case* bandwidth across them;
3. size Qalypso tiles for each phase and report the shared-chip total;
4. show the peak-vs-average argument for multiplexing factories rather
   than dedicating them.

Run:  python examples/shor_kernel_planning.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 32

from repro import analyze_kernel, area_breakdown
from repro.arch.qalypso import tile_for_kernel
from repro.factory import Pi8Factory, PipelinedZeroFactory


def main() -> None:
    kernels = [analyze_kernel(name, WIDTH) for name in ("qrca", "qcla", "qft")]
    print("Kernel demands at the speed of data:")
    for ka in kernels:
        print(f"  {ka.name:<14} {ka.zero_bandwidth_per_ms:7.1f} zeros/ms  "
              f"{ka.pi8_bandwidth_per_ms:6.1f} pi/8/ms  "
              f"({ka.data_qubits} data qubits)")

    # Worst-case provisioning: the chip must keep the hungriest phase fed.
    peak_zero = max(ka.zero_bandwidth_per_ms for ka in kernels)
    peak_pi8 = max(ka.pi8_bandwidth_per_ms for ka in kernels)
    zero_factory = PipelinedZeroFactory()
    pi8_factory = Pi8Factory()
    import math

    pi8_count = math.ceil(peak_pi8 / pi8_factory.throughput_per_ms)
    zero_count = math.ceil(
        (peak_zero + pi8_count * pi8_factory.throughput_per_ms)
        / zero_factory.throughput_per_ms
    )
    factory_area = zero_count * zero_factory.area + pi8_count * pi8_factory.area
    data_qubits = max(ka.data_qubits for ka in kernels)
    print(f"\nShared chip for all phases:")
    print(f"  {zero_count} zero factories + {pi8_count} pi/8 factories "
          f"= {factory_area} macroblocks of generation")
    print(f"  data region: {7 * data_qubits} macroblocks "
          f"({data_qubits} encoded qubits)")
    total = factory_area + 7 * data_qubits
    print(f"  total {total} mb; {factory_area / total:.0%} is ancilla generation")

    # Why share? Dedicating per-phase factories wastes the difference.
    dedicated = sum(area_breakdown(ka).factory_area for ka in kernels)
    print(f"\nIf each phase had dedicated factories: {dedicated:.0f} mb "
          f"of generation ({dedicated / factory_area:.1f}x the shared chip) —")
    print("the multiplexing argument of Figure 14b applied across phases.")

    print("\nPer-phase Qalypso tiles for comparison:")
    for ka in kernels:
        tile = tile_for_kernel(ka)
        print(f"  {ka.name:<14} {tile.zero_factories:>3} zero + "
              f"{tile.pi8_factories} pi/8 factories, {tile.total_area} mb")


if __name__ == "__main__":
    main()
