"""Rediscovering Qalypso: ADCR-driven design-space exploration.

The paper's proposed microarchitecture is not a guess — it is the
optimum of a design-space search over architecture organization and
factory provisioning (Figures 15-16). This walkthrough re-runs that
search with the `repro.explore` subsystem:

1. declare the Figure 15 design space (architecture kind x factory-area
   budget) for the 32-bit carry-lookahead adder;
2. exhaustively grid-search it for the ADCR-optimal point — the paper's
   pick: the fully-multiplexed (Qalypso) organization;
3. re-run the same search to show the disk-backed result store making it
   free (zero new simulations);
4. hand the *remaining* half-budget to the adaptive strategy, which
   refines between the grid lines and matches or beats the grid optimum;
5. print the area-delay Pareto front — the menu of defensible designs.

Run:  python examples/explore_qalypso.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 32

from repro.explore import (
    AdaptiveStrategy,
    AdcrObjective,
    Evaluator,
    GridStrategy,
    ResultStore,
    architecture_space,
    explore,
    format_exploration,
)
from repro.kernels import analyze_kernel


def main() -> None:
    kernel, width = "qcla", WIDTH
    analysis = analyze_kernel(kernel, width)
    space = architecture_space(analysis)
    store = ResultStore()  # .repro_cache/ in the working directory
    objective = AdcrObjective()

    # 1-2. Exhaustive grid search of the Figure 15 lattice.
    evaluator = Evaluator(kernel=kernel, width=width, store=store)
    grid = explore(
        space,
        objective,
        GridStrategy(space),
        evaluator=evaluator,
        budget=space.grid_size(),
    )
    print(format_exploration(grid))
    print()

    # 3. Warm re-run: the result store answers everything from disk.
    rerun = explore(
        space,
        objective,
        GridStrategy(space),
        evaluator=Evaluator(kernel=kernel, width=width, store=store),
        budget=space.grid_size(),
    )
    print(f"Warm re-run: {rerun.simulations_run} new simulations, "
          f"{rerun.cache_hits} evaluations served from .repro_cache/")
    print()

    # 4. Adaptive refinement at half the grid budget. The coarse pass is
    # served from the store too; only genuinely new points simulate.
    adaptive = explore(
        space,
        objective,
        AdaptiveStrategy(space, seed=0),
        evaluator=Evaluator(kernel=kernel, width=width, store=store),
        budget=space.grid_size() // 2,
    )
    print(f"Adaptive ({adaptive.evaluated} evaluations, "
          f"{adaptive.simulations_run} new simulations):")
    print(f"  grid best     {objective.name} = {grid.best_score:.4g}  "
          f"at {dict(grid.best.point)}")
    print(f"  adaptive best {objective.name} = {adaptive.best_score:.4g}  "
          f"at {dict(adaptive.best.point)}")
    verdict = "matches" if adaptive.best_score == grid.best_score else (
        "beats" if adaptive.best_score < grid.best_score else "trails")
    print(f"  -> adaptive {verdict} the exhaustive grid at half the budget")


if __name__ == "__main__":
    main()
