"""Running a 32-bit adder at the speed of data (Sections 3 and 5.1).

Walks the paper's core argument end to end on the ripple-carry adder:

1. build the reversible circuit and verify it adds;
2. lower it to the [[7,1,3]] encoded gate set;
3. split its critical path into data ops / QEC interaction / ancilla prep
   (Table 2) — showing prep dominates;
4. sweep steady ancilla throughput (Figure 8) to find the bandwidth where
   execution reaches the dataflow floor;
5. provision factories for that bandwidth (Table 9).

Run:  python examples/adder_at_speed_of_data.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 32

from repro import analyze_kernel, area_breakdown, throughput_sweep
from repro.kernels.classical import run_adder
from repro.kernels.qrca import qrca_circuit, qrca_registers
from repro.reporting.figures import ascii_plot


def main() -> None:
    width = WIDTH

    # 1. The circuit really adds.
    regs = qrca_registers(width)
    circuit = qrca_circuit(width)
    a, b = 3141592653 % 2**width, 2718281828 % 2**width
    out = run_adder(circuit, regs.a, regs.b, regs.b + [regs.b_high], a, b, regs.c)
    assert out["sum"] == a + b
    print(f"QRCA-{width}: {a} + {b} = {out['sum']}  "
          f"({len(circuit)} reversible gates, {circuit.num_qubits} qubits)")

    # 2-3. Encoded characterization.
    kernel = analyze_kernel("qrca", width)
    row = kernel.table2_row()
    print(f"\nCritical path split (Table 2 row):")
    print(f"  data operations    {row['data_op_us']:>10.0f} us ({row['data_op_frac']:.1%})")
    print(f"  QEC interaction    {row['qec_interact_us']:>10.0f} us ({row['qec_interact_frac']:.1%})")
    print(f"  ancilla prep       {row['ancilla_prep_us']:>10.0f} us ({row['ancilla_prep_frac']:.1%})")
    print("  -> taking prep off the critical path is worth "
          f"{1 / (1 - row['ancilla_prep_frac']):.1f}x")

    # 4. Throughput sweep (Figure 8).
    avg = kernel.zero_bandwidth_per_ms
    rates = [avg * f for f in (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0)]
    points = throughput_sweep(kernel, rates)
    print(f"\nExecution time vs steady zero-ancilla throughput "
          f"(average demand {avg:.1f}/ms):")
    series = {"QRCA": [(p.x, p.makespan_us / 1000.0) for p in points]}
    print(ascii_plot(series, logx=True, logy=True, width=48, height=12))

    # 5. Provisioning.
    breakdown = area_breakdown(kernel)
    print(f"\nFactory provisioning at the speed of data:")
    print(f"  {breakdown.qec_factory_area:.0f} mb of zero factories + "
          f"{breakdown.pi8_factory_area:.0f} mb of pi/8 chains for "
          f"{breakdown.data_area:.0f} mb of data "
          f"({breakdown.ancilla_fraction:.0%} of the chip is ancilla generation)")


if __name__ == "__main__":
    main()
