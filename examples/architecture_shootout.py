"""QLA vs CQLA vs Qalypso on the carry-lookahead adder (Section 5).

Reproduces the Figure 15 sweep for the 32-bit QCLA and the headline
Qalypso-vs-CQLA comparison: at matched factory area the fully-multiplexed
tile runs the kernel more than five times faster.

Run:  python examples/architecture_shootout.py
"""

import os

# Smoke-test hook: REPRO_SMOKE=1 shrinks problem sizes so the test suite
# can run every example in-process in seconds.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
WIDTH = 8 if SMOKE else 32

from repro import ArchitectureKind, analyze_kernel, area_breakdown, area_sweep
from repro.arch.qalypso import compare_with_cqla, tile_for_kernel
from repro.reporting.figures import ascii_plot


def main() -> None:
    kernel = analyze_kernel("qcla", WIDTH)
    matched = area_breakdown(kernel).factory_area
    print(f"{kernel.name}: matched-demand factory area = {matched:.0f} macroblocks\n")

    areas = [matched * f for f in (0.25, 0.5, 1, 2, 4, 16, 64, 256)]
    curves = area_sweep(kernel, areas=areas)
    plot = {
        kind.value: [(p.x, p.makespan_us / 1000.0) for p in points]
        for kind, points in curves.items()
    }
    print("Execution time (ms) vs ancilla-factory area (Figure 15):")
    print(ascii_plot(plot, logx=True, logy=True, width=56, height=14))

    for kind, points in curves.items():
        plateau = points[-1].makespan_us / 1000.0
        print(f"  {kind.value:<12} plateau: {plateau:8.1f} ms")

    tile = tile_for_kernel(kernel)
    comparison = compare_with_cqla(kernel)
    print(f"\nQalypso tile: {tile.data_qubits} data qubits, "
          f"{tile.zero_factories} zero + {tile.pi8_factories} pi/8 factories, "
          f"{tile.total_area} mb total")
    print(f"At {comparison.factory_area:.0f} mb of factories:")
    print(f"  Qalypso (fully-multiplexed): {comparison.qalypso.makespan_ms:8.1f} ms")
    print(f"  CQLA:                        {comparison.cqla.makespan_ms:8.1f} ms "
          f"({comparison.cqla.cache_misses} cache misses)")
    print(f"  speedup: {comparison.speedup:.1f}x  "
          f"(paper claims 'more than five times')")


if __name__ == "__main__":
    main()
